#include "engine/pli_cache.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/fault.h"

namespace flexrel {

namespace {

const Pli::Cluster kEmptyCluster;

// The value's current cluster in the index, or the shared empty cluster.
const Pli::Cluster& ClusterOf(const PliCache::ValueIndex& index,
                              const Value& value) {
  auto it = index.find(value);
  return it == index.end() ? kEmptyCluster : it->second;
}

// One scan of the instance into a fresh value index — the single builder
// behind both the read path (IndexFor) and the flush paths
// (EnsureIndexLocked). No reserve: the map holds one entry per *distinct*
// value, and typical indexed attributes (the bench's jobtype shape) have
// few of those.
std::shared_ptr<PliCache::ValueIndex> BuildValueIndex(
    const std::vector<Tuple>& rows, AttrId attr) {
  auto index = std::make_shared<PliCache::ValueIndex>();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (const Value* v = rows[i].Get(attr)) {
      (*index)[*v].push_back(static_cast<Pli::RowId>(i));
    }
  }
  return index;
}

// Once the pending buffer holds this many raw deltas, the hooks coalesce it
// in place (first delta per row wins — exactly what the flush would keep),
// bounding the buffer by the number of touched rows even when a mutation
// storm runs without interleaved reads.
constexpr size_t kPendingCompactThreshold = 4096;

// Flat bookkeeping charges for the memory-budget accounting sweep: rough
// per-map-entry overhead (hash slot, future/control block, LRU node,
// snapshot-table mirror) and per-Value payload estimate. The budget is
// advisory — these keep the estimate honest without sizeof-walking every
// node type.
constexpr size_t kPerEntryOverhead = 160;
constexpr size_t kPerValueEstimate = 48;

// An already-fulfilled slot: what a COW clone (and nothing else) installs —
// the original future's builder protocol already ran to completion.
std::shared_future<std::shared_ptr<Pli>> ReadyFuture(std::shared_ptr<Pli> p) {
  std::promise<std::shared_ptr<Pli>> promise;
  promise.set_value(std::move(p));
  return promise.get_future().share();
}

}  // namespace

void ValueIndexApplyInsert(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* value) {
  if (value == nullptr) return;  // the row does not carry the attribute
  std::vector<Pli::RowId>& cluster = (*index)[*value];
  if (cluster.empty() || cluster.back() < row) {
    cluster.push_back(row);  // appends (the common case) stay O(1)
  } else {
    cluster.insert(std::lower_bound(cluster.begin(), cluster.end(), row),
                   row);
  }
}

void ValueIndexApplyUpdate(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* old_value, const Value* new_value) {
  if (old_value != nullptr) {
    auto it = index->find(*old_value);
    if (it != index->end()) {
      std::vector<Pli::RowId>& cluster = it->second;
      auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
      if (pos != cluster.end() && *pos == row) cluster.erase(pos);
      // Emptied values disappear, as in a from-scratch build.
      if (cluster.empty()) index->erase(it);
    }
  }
  ValueIndexApplyInsert(index, row, new_value);
}

namespace {

// The one splice body behind every batched value-index application. Groups
// the burst by value (the rows leaving and joining each one — sorting these
// small lists once is what lets every affected cluster be spliced in a
// single merge pass), rebuilds each affected cluster by one merge of
// (current \ erases) with the inserts, and reports every affected value to
// `capture(old_front, old_size, stored)` — `stored` pointing at the
// cluster now living in the index, or null when the value emptied out.
template <typename CaptureFn>
void SpliceValueIndex(PliCache::ValueIndex* index,
                      const std::vector<ValueIndexDelta>& deltas,
                      CaptureFn&& capture) {
  std::unordered_map<Value, std::pair<Pli::Cluster, Pli::Cluster>, ValueHash>
      moves;  // value -> (erased rows, inserted rows)
  for (const ValueIndexDelta& d : deltas) {
    if (d.old_value != nullptr && d.new_value != nullptr &&
        *d.old_value == *d.new_value) {
      continue;  // no movement on this attribute
    }
    if (d.old_value != nullptr) moves[*d.old_value].first.push_back(d.row);
    if (d.new_value != nullptr) moves[*d.new_value].second.push_back(d.row);
  }
  for (auto& [value, move] : moves) {
    auto& [erases, inserts] = move;
    std::sort(erases.begin(), erases.end());
    std::sort(inserts.begin(), inserts.end());
    auto it = index->find(value);
    const Pli::Cluster& current =
        it != index->end() ? it->second : kEmptyCluster;
    const Pli::RowId old_front = current.empty() ? 0 : current.front();
    const size_t old_size = current.size();
    Pli::Cluster next;
    next.reserve(current.size() + inserts.size());
    size_t e = 0, ins = 0;
    for (Pli::RowId r : current) {
      if (e < erases.size() && erases[e] == r) {
        ++e;
        continue;
      }
      while (ins < inserts.size() && inserts[ins] < r) {
        next.push_back(inserts[ins++]);
      }
      next.push_back(r);
    }
    while (ins < inserts.size()) next.push_back(inserts[ins++]);
    const Pli::Cluster* stored = nullptr;
    if (next.empty()) {
      if (it != index->end()) index->erase(it);
    } else if (it != index->end()) {
      it->second = std::move(next);
      stored = &it->second;
    } else {
      stored = &index->emplace(value, std::move(next)).first->second;
    }
    capture(old_front, old_size, stored);
  }
}

}  // namespace

std::vector<Pli::ClusterPatch> ValueIndexApplyUpdateBatch(
    PliCache::ValueIndex* index, const std::vector<ValueIndexDelta>& deltas,
    bool capture) {
  std::vector<Pli::ClusterPatch> patches;
  SpliceValueIndex(
      index, deltas,
      [&](Pli::RowId old_front, size_t old_size, const Pli::Cluster* stored) {
        // Values stripped before and after the splice never surface in the
        // partition; skip their no-op patches. The copy into the patch is
        // what the partition group-apply consumes; callers with no
        // partition to patch skip it.
        if (!capture) return;
        const size_t new_size = stored == nullptr ? 0 : stored->size();
        if (old_size < 2 && new_size < 2) return;
        Pli::ClusterPatch patch;
        patch.old_front = old_front;
        patch.old_size = old_size;
        if (stored != nullptr) patch.new_rows = *stored;
        patches.push_back(std::move(patch));
      });
  return patches;
}

std::vector<Pli::ClusterPatchView> ValueIndexApplyUpdateBatchViews(
    PliCache::ValueIndex* index, const std::vector<ValueIndexDelta>& deltas) {
  std::vector<Pli::ClusterPatchView> views;
  SpliceValueIndex(
      index, deltas,
      [&](Pli::RowId old_front, size_t old_size, const Pli::Cluster* stored) {
        const size_t new_size = stored == nullptr ? 0 : stored->size();
        if (old_size < 2 && new_size < 2) return;
        views.push_back({old_front, old_size,
                         stored == nullptr ? nullptr : stored->data(),
                         static_cast<uint32_t>(new_size)});
      });
  return views;
}

std::vector<Pli::ClusterPatch> ValueIndexApplyInsertBatch(
    PliCache::ValueIndex* index,
    const std::vector<std::pair<Pli::RowId, const Value*>>& inserts,
    bool capture) {
  std::vector<ValueIndexDelta> deltas;
  deltas.reserve(inserts.size());
  for (const auto& [row, value] : inserts) {
    if (value == nullptr) continue;  // the row does not carry the attribute
    deltas.push_back({row, nullptr, value});
  }
  return ValueIndexApplyUpdateBatch(index, deltas, capture);
}

PliCache::PliCache(const std::vector<Tuple>* rows)
    : PliCache(rows, Options()) {}

PliCache::PliCache(const std::vector<Tuple>* rows, Options options)
    : rows_(rows),
      options_(options),
      pending_compact_at_(kPendingCompactThreshold) {}

std::shared_ptr<const Pli> PliCache::Get(const AttrSet& attrs) {
  // Nested lookups (BuildFor's prefix recursion, ProbeFor) each count —
  // every Get() bumps exactly one of hits/misses, so the telemetry
  // identity hits + misses == lookups holds at any quiescent point.
  FLEXREL_TELEMETRY_COUNT("engine.pli_cache.lookups", 1);
  FLEXREL_TELEMETRY_LATENCY(get_timer, "engine.pli_cache.get_ns");
  if (options_.cow_reads) {
    // The snapshot read path: one slot pin, no mutex, no flush (COW
    // hooks flush eagerly, so the snapshot is always current). A miss
    // falls through to the locked path below — that is cache *population*
    // (write-side work), not a reader lock wait.
    std::shared_ptr<const Pli> hit =
        WithSnapshot([&](const Snapshot* snap) -> std::shared_ptr<const Pli> {
          if (snap == nullptr) return nullptr;
          auto it = snap->plis.find(attrs);
          return it == snap->plis.end() ? nullptr : it->second;
        });
    if (hit != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.hits", 1);
      return hit;
    }
  } else {
    // Locked-mode reads take mu_ by design; the counter existing (and
    // staying 0 in COW mode) is the regression tripwire for the lock-free
    // read-path guarantee.
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.reader_lock_waits", 1);
  }
  std::promise<PliPtr> promise;
  std::shared_future<PliPtr> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    FlushPendingLocked();
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++hits_;
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.hits", 1);
      if (it->second.evictable) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      // Copy the future and wait outside the lock: the thread fulfilling it
      // may itself need the lock for recursive sub-partition lookups.
      std::shared_future<PliPtr> pending = it->second.future;
      lock.unlock();
      return pending.get();
    }
    ++misses_;
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.misses", 1);
    if (options_.memory_budget_bytes != 0 && attrs.size() > 1) {
      EvictLocked();
      if (AccountedBytesLocked() > options_.memory_budget_bytes) {
        // Nothing evictable is left and the pinned bases alone exceed the
        // budget: degrade gracefully to the uncached oracle path — build
        // and serve this partition without caching it.
        ++uncached_serves_;
        FLEXREL_TELEMETRY_COUNT("engine.cache.uncached_serves", 1);
        lock.unlock();
        return BuildFor(attrs);
      }
    }
    Entry entry;
    entry.future = future = promise.get_future().share();
    entry.evictable = attrs.size() > 1;
    if (entry.evictable) {
      lru_.push_front(attrs);
      entry.lru_pos = lru_.begin();
    }
    entries_.emplace(attrs, std::move(entry));
    EvictLocked();
  }
  // Build outside the lock; concurrent requesters for the same key block on
  // the shared future instead of rebuilding.
  try {
    PliPtr pli = BuildFor(attrs);
    promise.set_value(std::move(pli));
    if (options_.cow_reads || options_.memory_budget_bytes != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.memory_budget_bytes != 0) {
        AccountMemoryLocked();
        EvictLocked();
      }
      // Fold the fresh entry into the published table so every later read
      // resolves it lock-free.
      if (options_.cow_reads) PublishLocked(/*flush_publish=*/false);
    }
  } catch (...) {
    // Un-poison the slot before publishing the failure: requesters already
    // waiting see this exception, but the next Get() rebuilds instead of
    // rethrowing a stale (possibly transient) error forever.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(attrs);
      if (it != entries_.end()) DropEntryLocked(it);
    }
    promise.set_exception(std::current_exception());
  }
  return future.get();
}

PliCache::PliPtr PliCache::BuildFor(const AttrSet& attrs) {
  // Chaos harness hook: a build that throws (here: an injected allocation
  // failure) unwinds through Get's un-poisoning catch, so the next request
  // rebuilds instead of inheriting a stale error.
  FLEXREL_FAULT_INJECT("pli_cache.build");
  if (attrs.size() == 1 && options_.use_codes) {
    // Counting sort over the attribute's dictionary code column when one
    // exists: the column hashes each value exactly once across its
    // lifetime (built on the first CodeColumnFor, then patched in lockstep
    // with the partitions), so partition (re)builds skip the per-row Value
    // hashing entirely. Probe-only on purpose — materializing a column
    // just to build one partition would cost more than the hash build it
    // replaces (the per-code buckets are the price), so a cold cache stays
    // at hash-build parity with the value-keyed oracle.
    std::shared_ptr<const CodeColumn> column =
        ExistingCodeColumn(attrs.ids().front());
    if (column != nullptr) {
      return std::make_shared<Pli>(Pli::BuildFromCodes(
          column->codes(), column->code_bound(), PartitionStorage()));
    }
  }
  if (attrs.size() <= 1) {
    Pli built =
        attrs.empty()
            ? Pli::Build(*rows_, attrs, PartitionStorage())
            : Pli::Build(*rows_, attrs.ids().front(), PartitionStorage());
    return std::make_shared<Pli>(std::move(built));
  }
  // X = prefix ∪ {last}: intersect the cached prefix partition (the more
  // refined operand, hence the outer one) with the last attribute's,
  // through that attribute's memoized (and incrementally maintained) probe.
  AttrId last = attrs.ids().back();
  AttrSet prefix = attrs.Minus(AttrSet::Of(last));
  std::shared_ptr<const Pli> left = Get(prefix);
  std::shared_ptr<const PliProbe> probe = ProbeFor(last);
  return std::make_shared<Pli>(left->IntersectWithProbe(*probe));
}

std::shared_ptr<const PliProbe> PliCache::ProbeFor(AttrId attr) {
  if (options_.cow_reads) {
    std::shared_ptr<const PliProbe> hit = WithSnapshot(
        [&](const Snapshot* snap) -> std::shared_ptr<const PliProbe> {
          if (snap == nullptr) return nullptr;
          auto it = snap->probes.find(attr);
          return it == snap->probes.end() ? nullptr : it->second;
        });
    if (hit != nullptr) return hit;
  } else {
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.reader_lock_waits", 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushPendingLocked();
    auto it = probes_.find(attr);
    if (it != probes_.end()) return it->second;
  }
  std::shared_ptr<const Pli> pli = Get(AttrSet::Of(attr));
  auto probe = std::make_shared<PliProbe>(pli->BuildProbe());
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical tables; first insert wins.
  std::shared_ptr<const PliProbe> memo =
      probes_.emplace(attr, std::move(probe)).first->second;
  if (options_.cow_reads) PublishLocked(/*flush_publish=*/false);
  return memo;
}

// ---------------------------------------------------------------------------
// Incremental probe maintenance: O(delta) label patches in lockstep with the
// cluster patches, instead of the old memo-drop + O(rows) rebuild per flush.
// ---------------------------------------------------------------------------

void PliCache::DropProbeLocked(AttrId attr) {
  if (probes_.erase(attr) > 0) ++probe_rebuilds_;
}

void PliCache::MaybeRetireBloatedProbeLocked(AttrId attr, const Pli& pli) {
  auto it = probes_.find(attr);
  if (it == probes_.end()) return;
  const PliProbe& probe = *it->second;
  // Density check: the label space sizes every IntersectWithProbe scratch
  // allocation, so once it dwarfs the live clusters the memo is worth an
  // O(rows) dense rebuild.
  if (static_cast<size_t>(probe.label_bound) <= 2 * pli.num_clusters() + 64) {
    return;
  }
  // Hysteresis: mass stripping dissolves clusters *under* the bound (labels
  // retire, the bound doesn't shrink), so even a freshly rebuilt probe can
  // sit past the density check the moment the cluster count moves — and
  // without a baseline, every flush would re-trip it and pay the rebuild
  // again. A rebuild resets the baseline (BuildProbe); re-drop only after
  // the bound has bloated again from that reset baseline.
  if (probe.label_bound <= 2 * probe.label_baseline + 64) return;
  DropProbeLocked(attr);
}

void PliCache::ProbePatchInsertLocked(AttrId attr, Pli::RowId row,
                                      const Pli::Cluster& partners) {
  auto it = probes_.find(attr);
  if (it == probes_.end()) return;
  PliProbe* probe = it->second.get();
  if (partners.empty()) {
    probe->labels[row] = Pli::kNoCluster;  // stays stripped
  } else if (partners.size() == 1) {
    // Un-strip: the fresh two-row cluster takes a fresh stable label. A
    // partner already carrying one contradicts the memo.
    if (probe->labels[partners.front()] != Pli::kNoCluster) {
      DropProbeLocked(attr);
      return;
    }
    const int32_t label = probe->label_bound++;
    probe->labels[partners.front()] = label;
    probe->labels[row] = label;
  } else {
    const int32_t label = probe->labels[partners.front()];
    if (label == Pli::kNoCluster) {  // contradicts the memo; rebuild lazily
      DropProbeLocked(attr);
      return;
    }
    probe->labels[row] = label;
  }
  ++probe_patches_;
}

void PliCache::ProbePatchEraseLocked(AttrId attr, Pli::RowId row,
                                     const Pli::Cluster& partners) {
  auto it = probes_.find(attr);
  if (it == probes_.end()) return;
  PliProbe* probe = it->second.get();
  probe->labels[row] = Pli::kNoCluster;
  if (partners.size() == 1) {
    // The cluster dissolves; its label is simply retired.
    probe->labels[partners.front()] = Pli::kNoCluster;
  }
  ++probe_patches_;
}

void PliCache::ProbePatchBatchLocked(
    AttrId attr, const std::vector<ValueIndexDelta>& deltas,
    const std::vector<Pli::ClusterPatchView>& patches) {
  auto it = probes_.find(attr);
  if (it == probes_.end()) return;
  PliProbe* probe = it->second.get();
  // Pre-read every replaced cluster's label off its pre-splice front: the
  // movers' labels are cleared next, and a front may itself be a mover.
  std::vector<int32_t> labels(patches.size(), Pli::kNoCluster);
  for (size_t p = 0; p < patches.size(); ++p) {
    if (patches[p].old_size >= 2) {
      labels[p] = probe->labels[patches[p].old_front];
      if (labels[p] == Pli::kNoCluster) {  // contradicts the memo
        DropProbeLocked(attr);
        return;
      }
    }
  }
  for (const ValueIndexDelta& d : deltas) {
    if (d.old_value != nullptr && d.new_value != nullptr &&
        *d.old_value == *d.new_value) {
      continue;  // no movement on this attribute
    }
    probe->labels[d.row] = Pli::kNoCluster;
  }
  for (size_t p = 0; p < patches.size(); ++p) {
    const Pli::ClusterPatchView& patch = patches[p];
    if (patch.new_size >= 2) {
      const int32_t label = labels[p] != Pli::kNoCluster
                                ? labels[p]
                                : probe->label_bound++;
      // O(cluster) writes — the same rows the splice itself just touched;
      // stayers get their own label rewritten, which is idempotent.
      for (uint32_t i = 0; i < patch.new_size; ++i) {
        probe->labels[patch.new_rows[i]] = label;
      }
    } else if (patch.new_size == 1) {
      probe->labels[patch.new_rows[0]] = Pli::kNoCluster;  // re-stripped
    }
  }
  ++probe_patches_;
}

std::shared_ptr<const PliCache::ValueIndex> PliCache::IndexFor(AttrId attr) {
  if (options_.cow_reads) {
    std::shared_ptr<const ValueIndex> hit = WithSnapshot(
        [&](const Snapshot* snap) -> std::shared_ptr<const ValueIndex> {
          if (snap == nullptr) return nullptr;
          auto it = snap->indexes.find(attr);
          return it == snap->indexes.end() ? nullptr : it->second;
        });
    if (hit != nullptr) return hit;
  } else {
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.reader_lock_waits", 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushPendingLocked();
    auto it = value_indexes_.find(attr);
    if (it != value_indexes_.end()) return it->second;
  }
  // Build outside the lock — an O(rows) scan must not stall concurrent
  // Get()s. Only the flush paths (which already hold mu_ and need the
  // fresh-build signal) go through EnsureIndexLocked.
  std::shared_ptr<ValueIndex> index = BuildValueIndex(*rows_, attr);
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical indexes; first insert wins.
  std::shared_ptr<const ValueIndex> memo =
      value_indexes_.emplace(attr, std::move(index)).first->second;
  if (options_.cow_reads) PublishLocked(/*flush_publish=*/false);
  return memo;
}

std::shared_ptr<const CodeColumn> PliCache::ExistingCodeColumn(AttrId attr) {
  if (!options_.use_codes) return nullptr;
  if (options_.cow_reads) {
    return WithSnapshot(
        [&](const Snapshot* snap) -> std::shared_ptr<const CodeColumn> {
          if (snap == nullptr) return nullptr;
          auto it = snap->columns.find(attr);
          return it == snap->columns.end() ? nullptr : it->second;
        });
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = code_columns_.find(attr);
  return it == code_columns_.end() ? nullptr : it->second;
}

std::shared_ptr<const CodeColumn> PliCache::CodeColumnFor(AttrId attr) {
  if (!options_.use_codes) return nullptr;  // Value-keyed oracle mode
  if (options_.cow_reads) {
    std::shared_ptr<const CodeColumn> hit = WithSnapshot(
        [&](const Snapshot* snap) -> std::shared_ptr<const CodeColumn> {
          if (snap == nullptr) return nullptr;
          auto it = snap->columns.find(attr);
          return it == snap->columns.end() ? nullptr : it->second;
        });
    if (hit != nullptr) return hit;
  } else {
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.reader_lock_waits", 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushPendingLocked();
    auto it = code_columns_.find(attr);
    if (it != code_columns_.end()) return it->second;
  }
  // Build outside the lock, like the value indexes: one O(rows) intern
  // pass — the only time this attribute's values are ever hashed.
  auto column = std::make_shared<CodeColumn>(CodeColumn::Build(*rows_, attr));
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical columns; first insert wins.
  std::shared_ptr<const CodeColumn> memo =
      code_columns_.emplace(attr, std::move(column)).first->second;
  if (options_.cow_reads) PublishLocked(/*flush_publish=*/false);
  return memo;
}

PliCache::PartnerScan PliCache::AgreeingRowsLocked(const AttrSet& attrs,
                                                   const Tuple& proj,
                                                   Pli::RowId exclude_row,
                                                   Pli::Cluster* out,
                                                   size_t* scan_budget) {
  out->clear();
  // The partners are exactly the k-way intersection of the attributes'
  // value clusters: pure sorted-integer work against the indexes' current
  // state (mid-flush the row vector is already ahead of the structures,
  // so touching tuples here would observe not-yet-applied states).
  std::vector<const Pli::Cluster*> lists;
  lists.reserve(attrs.size());
  for (AttrId a : attrs) {
    auto idx_it = value_indexes_.find(a);
    if (idx_it == value_indexes_.end()) return PartnerScan::kNoIndex;
    auto it = idx_it->second->find(*proj.Get(a));
    if (it == idx_it->second->end()) {
      return PartnerScan::kOk;  // value unseen -> no partners
    }
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const Pli::Cluster* a, const Pli::Cluster* b) {
              return a->size() < b->size();
            });
  const Pli::Cluster* seed = lists.front();
  // Patch vs rebuild: a seed cluster spanning most of the instance — or a
  // burst whose cumulative scans overdraw the budget — costs more than one
  // probe-table pass over the patched sub-partitions; tell the caller to
  // drop and re-intersect instead.
  if (seed->size() >
      std::max(options_.patch_scan_limit, rows_->size() / 2)) {
    return PartnerScan::kTooBig;
  }
  if (scan_budget != nullptr) {
    if (seed->size() > *scan_budget) return PartnerScan::kTooBig;
    *scan_budget -= seed->size();
  }
  out->reserve(seed->size());
  for (Pli::RowId r : *seed) {
    if (r != exclude_row) out->push_back(r);
  }
  // Refine by each larger list: stream it when the sizes are comparable,
  // binary-search per survivor when it dwarfs them (adaptive set
  // intersection — fat clusters cost log, not a full scan).
  for (size_t l = 1; l < lists.size() && !out->empty(); ++l) {
    const Pli::Cluster& other = *lists[l];
    size_t kept = 0;
    if (other.size() / out->size() >= 16) {
      for (Pli::RowId r : *out) {
        if (std::binary_search(other.begin(), other.end(), r)) {
          (*out)[kept++] = r;
        }
      }
    } else {
      size_t j = 0;
      for (Pli::RowId r : *out) {
        while (j < other.size() && other[j] < r) ++j;
        if (j < other.size() && other[j] == r) (*out)[kept++] = r;
      }
    }
    out->resize(kept);
  }
  return PartnerScan::kOk;
}

PliCache::EntryMap::iterator PliCache::DropEntryLocked(
    EntryMap::iterator it) {
  // A probe mirrors its single-attribute partition; dropping the partition
  // for a lazy rebuild leaves the memo describing nothing — retire it too.
  if (it->first.size() == 1) DropProbeLocked(it->first.ids().front());
  if (it->second.evictable) lru_.erase(it->second.lru_pos);
  return entries_.erase(it);
}

void PliCache::PatchEntriesLocked(
    const std::function<PatchResult(const AttrSet&, Pli*)>& patch,
    size_t* patched_counter) {
  using namespace std::chrono_literals;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.future.wait_for(0s) != std::future_status::ready) {
      ++patch_rebuilds_;
      it = DropEntryLocked(it);
      continue;
    }
    switch (patch(it->first, it->second.future.get().get())) {
      case PatchResult::kRebuild:
        ++patch_rebuilds_;
        it = DropEntryLocked(it);
        break;
      case PatchResult::kPatched:
        ++*patched_counter;
        ++it;
        break;
      case PatchResult::kUntouched:
        ++it;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation hooks: append to the pending buffer, O(1) per row. In locked
// mode all patching is deferred to the next read's flush; in COW mode the
// hook flushes (and publishes) eagerly under the same lock hold, so the
// published snapshot is always current and readers never flush — the
// ordering contract is: mutate rows, hook buffers + patches successor
// copies + swaps the snapshot, release mu_, readers see the new epoch.
// ---------------------------------------------------------------------------

void PliCache::OnInsert(Pli::RowId row) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back({row, /*is_insert=*/true, Tuple()});
  if (options_.cow_reads) FlushPendingLocked();
}

void PliCache::OnInsertBatch(Pli::RowId first_row, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.reserve(pending_.size() + count);
  for (size_t i = 0; i < count; ++i) {
    pending_.push_back(
        {static_cast<Pli::RowId>(first_row + i), /*is_insert=*/true, Tuple()});
  }
  if (options_.cow_reads) FlushPendingLocked();
}

void PliCache::OnUpdate(Pli::RowId row, Tuple old_row) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back({row, /*is_insert=*/false, std::move(old_row)});
  if (options_.cow_reads) {
    FlushPendingLocked();
  } else if (pending_.size() >= pending_compact_at_) {
    CompactPendingLocked();
  }
}

void PliCache::OnUpdateBatch(
    std::vector<std::pair<Pli::RowId, Tuple>> old_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.reserve(pending_.size() + old_rows.size());
  for (auto& [row, old_row] : old_rows) {
    pending_.push_back({row, /*is_insert=*/false, std::move(old_row)});
  }
  if (options_.cow_reads) {
    FlushPendingLocked();
  } else if (pending_.size() >= pending_compact_at_) {
    CompactPendingLocked();
  }
}

void PliCache::CompactPendingLocked() {
  // Keep the first delta per row — an insert stays an insert, the oldest
  // recorded old state survives — which is exactly the coalescing the
  // flush applies anyway.
  std::unordered_set<Pli::RowId> seen;
  seen.reserve(pending_.size());
  std::vector<PendingDelta> compact;
  compact.reserve(pending_.size() / 2);
  for (PendingDelta& d : pending_) {
    if (seen.insert(d.row).second) compact.push_back(std::move(d));
  }
  pending_ = std::move(compact);
  // Doubling schedule: when the buffer is dominated by distinct rows,
  // compaction cannot shrink it — re-trying on every hook would go
  // quadratic against a read-free mutation storm.
  pending_compact_at_ =
      std::max(kPendingCompactThreshold, pending_.size() * 2);
}

// ---------------------------------------------------------------------------
// The flush: coalesce the buffer to net per-row deltas, then patch per row,
// group-apply, or drop everything by the net burst size.
// ---------------------------------------------------------------------------

void PliCache::FlushPendingLocked() {
  if (pending_.empty()) return;
  telemetry::ScopedSpan flush_span("pli_cache.flush");
  FLEXREL_TELEMETRY_LATENCY(flush_timer, "engine.pli_cache.flush_ns");
  // Coalesce to one net delta per row: the first recorded old state wins,
  // the final state is read straight from the (fully mutated) rows. The
  // single-delta case — the per-mutation cadence the PR 3 path served —
  // skips the dedup machinery entirely.
  std::vector<NetDelta> net;
  net.reserve(pending_.size());
  if (pending_.size() == 1) {
    const PendingDelta& d = pending_.front();
    net.push_back(
        {d.row, d.is_insert, d.is_insert ? nullptr : &d.old_row, AttrSet()});
  } else {
    std::unordered_set<Pli::RowId> seen;
    seen.reserve(pending_.size());
    for (const PendingDelta& d : pending_) {
      if (seen.insert(d.row).second) {
        net.push_back({d.row, d.is_insert,
                       d.is_insert ? nullptr : &d.old_row, AttrSet()});
      }
    }
  }
  // Diff each net delta exactly once; every later stage reads the result.
  // Updates that net out (old state == final state) diff to ∅ and vanish —
  // e.g. a row moved away and back between two queries, or re-valued to
  // what it already held.
  size_t insert_count = 0;
  AttrSet changed;  // attributes whose partitions/indexes/probes may shift
  for (NetDelta& d : net) {
    const Tuple& now = (*rows_)[d.row];
    if (d.is_insert) {
      ++insert_count;
      d.changed_attrs = now.attrs();
    } else {
      for (const auto& [attr, value] : d.old_row->fields()) {
        const Value* nv = now.Get(attr);
        if (nv == nullptr || *nv != value) d.changed_attrs.Insert(attr);
      }
      for (const auto& [attr, value] : now.fields()) {
        (void)value;
        if (!d.old_row->Has(attr)) d.changed_attrs.Insert(attr);
      }
    }
    for (AttrId a : d.changed_attrs) changed.Insert(a);
  }
  std::erase_if(net, [](const NetDelta& d) {
    return !d.is_insert && d.changed_attrs.empty();
  });
  if (net.empty()) {
    if (flush_span.active()) flush_span.SetDetail("arm=noop b=0");
    pending_.clear();
    pending_compact_at_ = kPendingCompactThreshold;
    return;
  }
  // One flush == one arm taken, so per_row + batched + dropped == flushes.
  // The span detail carries the net burst size and the estimate the arm
  // decision compared it against.
  const size_t b = net.size();
  ++flushes_;
  FLEXREL_TELEMETRY_COUNT("engine.pli_cache.flushes", 1);
  FLEXREL_TELEMETRY_HIST("engine.pli_cache.flush.burst", b);
  const size_t drop_at = std::max(options_.drop_threshold, rows_->size() / 2);
  if (b >= drop_at) {
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.flush.dropped", 1);
    if (flush_span.active()) {
      flush_span.SetDetail("arm=drop b=" + std::to_string(b) +
                           " est=drop_at:" + std::to_string(drop_at));
    }
    DropAllLocked();
    pending_.clear();
    pending_compact_at_ = kPendingCompactThreshold;
    if (options_.memory_budget_bytes != 0) AccountMemoryLocked();
    // Dropping mutates no structure, so nothing needs cloning — but the
    // published table must stop resolving the dropped keys.
    if (options_.cow_reads) PublishLocked(/*flush_publish=*/true);
    return;
  }
  // Failure atomicity: everything from the clone to the last patch arm
  // allocates (successor copies, splices, lazily built indexes), and a
  // throw mid-patch would otherwise leave live structures half-patched.
  // The recovery is the strong guarantee at cache granularity: drop every
  // cached structure (the row vector is the source of truth; reads rebuild
  // lazily) and publish the dropped state, so no reader — locked or COW —
  // can ever observe a partially applied flush. The fault sites sit
  // *outside* PublishLocked on purpose: the recovery path must traverse no
  // injection point.
  try {
    FLEXREL_FAULT_INJECT("pli_cache.flush.clone");
    // COW: everything the patch arms below will touch is replaced by a
    // same-content successor first, so the live epoch's structures stay
    // frozen for their readers and the swap at the end is the only point
    // new state becomes visible.
    if (options_.cow_reads) CloneForCowLocked(changed, insert_count > 0);
    // Probe memos are patched in place by both flush arms below (in
    // lockstep with the cluster patches, via the ProbePatch*Locked
    // helpers); inserts only need the label arrays grown — new rows start
    // clusterless.
    if (insert_count > 0) {
      for (auto& [attr, probe] : probes_) {
        (void)attr;
        probe->labels.resize(rows_->size(), Pli::kNoCluster);
      }
    }
    // Both patch paths consult value indexes for partner sets and splices;
    // any missing one is built once and rewound to the pre-batch state.
    EnsureFlushIndexesLocked(net, changed);
    // The code columns ride the same burst: O(1)-ish integer work per
    // delta per pinned column, on either arm below.
    PatchCodeColumnsLocked(net, changed, insert_count > 0);
    FLEXREL_FAULT_INJECT("pli_cache.flush.patch");
    if (b < options_.batch_threshold) {
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.flush.per_row", 1);
      if (flush_span.active()) {
        flush_span.SetDetail(
            "arm=per_row b=" + std::to_string(b) +
            " est=batch_at:" + std::to_string(options_.batch_threshold));
      }
      for (const NetDelta& d : net) {
        if (d.is_insert) {
          ReplayInsertLocked(d.row);
        } else {
          ReplayUpdateLocked(d.row, *d.old_row, d.changed_attrs);
        }
      }
    } else {
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.flush.batched", 1);
      if (flush_span.active()) {
        flush_span.SetDetail(
            "arm=batched b=" + std::to_string(b) +
            " est=batch_at:" + std::to_string(options_.batch_threshold) +
            " drop_at:" + std::to_string(drop_at));
      }
      BatchApplyLocked(net, changed, insert_count);
    }
    FLEXREL_FAULT_INJECT("pli_cache.flush.publish");
  } catch (...) {
    ++flush_aborts_;
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.flush_aborts", 1);
    if (flush_span.active()) {
      flush_span.SetDetail("arm=aborted b=" + std::to_string(b));
    }
    DropAllLocked();
    pending_.clear();
    pending_compact_at_ = kPendingCompactThreshold;
    if (options_.memory_budget_bytes != 0) AccountMemoryLocked();
    if (options_.cow_reads) PublishLocked(/*flush_publish=*/true);
    // Swallowed: the flush recovered to a consistent (empty) cache, and
    // the mutation itself already succeeded against the row vector.
    return;
  }
  pending_.clear();
  pending_compact_at_ = kPendingCompactThreshold;
  if (options_.memory_budget_bytes != 0) {
    AccountMemoryLocked();
    EvictLocked();  // the flush may have grown structures past the budget
  }
  if (options_.cow_reads) PublishLocked(/*flush_publish=*/true);
}

void PliCache::CloneForCowLocked(const AttrSet& changed, bool has_inserts) {
  using namespace std::chrono_literals;
  for (auto& [attrs, entry] : entries_) {
    // Updates leave entries outside `changed` untouched; inserts patch the
    // row-count bookkeeping of every entry. Unready slots are skipped —
    // the flush arms drop them anyway, never patch them.
    if (!has_inserts && !attrs.Intersects(changed)) continue;
    if (entry.future.wait_for(0s) != std::future_status::ready) continue;
    entry.future = ReadyFuture(std::make_shared<Pli>(*entry.future.get()));
  }
  for (auto& [attr, probe] : probes_) {
    if (!has_inserts && !changed.Contains(attr)) continue;
    probe = std::make_shared<PliProbe>(*probe);
  }
  for (auto& [attr, index] : value_indexes_) {
    if (!changed.Contains(attr)) continue;
    index = std::make_shared<ValueIndex>(*index);
  }
  for (auto& [attr, column] : code_columns_) {
    // Inserts grow every column's code vector, not just changed attrs.
    if (!has_inserts && !changed.Contains(attr)) continue;
    column = std::make_shared<CodeColumn>(*column);
  }
}

void PliCache::PublishLocked(bool flush_publish) {
  using namespace std::chrono_literals;
  auto snap = std::make_shared<Snapshot>();
  snap->plis.reserve(entries_.size());
  for (const auto& [attrs, entry] : entries_) {
    // In-flight builds join the table on their own post-build refresh.
    if (entry.future.wait_for(0s) != std::future_status::ready) continue;
    snap->plis.emplace(attrs, entry.future.get());
  }
  snap->probes.reserve(probes_.size());
  for (const auto& [attr, probe] : probes_) snap->probes.emplace(attr, probe);
  snap->indexes.reserve(value_indexes_.size());
  for (const auto& [attr, index] : value_indexes_) {
    snap->indexes.emplace(attr, index);
  }
  snap->columns.reserve(code_columns_.size());
  for (const auto& [attr, column] : code_columns_) {
    snap->columns.emplace(attr, column);
  }
  snap->epoch = ++epoch_;
  if (flush_publish) {
    ++publishes_;
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.publishes", 1);
  } else {
    FLEXREL_TELEMETRY_COUNT("engine.pli_cache.snapshot_refreshes", 1);
  }
  FLEXREL_TELEMETRY_GAUGE_SET("engine.pli_cache.epoch", epoch_);
  // Writer side of the two-slot protocol (see snapshot_slots_ in the
  // header): rebuild the spare slot once its reader pins drain, then flip
  // the index. mu_ serializes publishers, so the relaxed self-load of
  // snapshot_cur_ is exact.
  const uint32_t spare = snapshot_cur_.load(std::memory_order_relaxed) ^ 1u;
  SnapshotSlot& slot = snapshot_slots_[spare];
  while (!slot.Drained()) {
    // Pins cover a shared_ptr copy only — this drain is a few cycles.
    std::this_thread::yield();
  }
  slot.snap = std::move(snap);
  snapshot_cur_.store(spare);
}

void PliCache::EnsureFlushIndexesLocked(const std::vector<NetDelta>& net,
                                        const AttrSet& changed) {
  for (const auto& [attrs, entry] : entries_) {
    (void)entry;
    if (attrs.empty() || !attrs.Intersects(changed)) continue;
    for (AttrId a : attrs) {
      if (value_indexes_.count(a) > 0) continue;  // dedups repeat visits too
      ValueIndex* index =
          value_indexes_.emplace(a, BuildValueIndex(*rows_, a))
              .first->second.get();
      // The fresh index reflects the final rows; rewind the buffered burst
      // — the deltas reversed, final state -> first recorded old state,
      // inserts removed entirely — so it describes the instance the cached
      // partitions still represent. One splice, no capture.
      std::vector<ValueIndexDelta> rewind;
      rewind.reserve(net.size());
      for (const NetDelta& d : net) {
        const Value* final_v = (*rows_)[d.row].Get(a);
        const Value* old_v = d.is_insert ? nullptr : d.old_row->Get(a);
        if (final_v == nullptr && old_v == nullptr) continue;
        if (final_v != nullptr && old_v != nullptr && *final_v == *old_v) {
          continue;
        }
        rewind.push_back({d.row, final_v, old_v});
      }
      ValueIndexApplyUpdateBatch(index, rewind, /*capture=*/false);
    }
  }
}

void PliCache::DropAllLocked() {
  entries_.clear();
  lru_.clear();
  value_indexes_.clear();
  probes_.clear();
  // Columns drop with everything else: past the drop threshold, per-row
  // bucket surgery on every pinned column costs more than the one intern
  // scan a lazy rebuild pays (exactly the value indexes' tradeoff).
  code_columns_.clear();
  ++full_drops_;
}

void PliCache::PatchCodeColumnsLocked(const std::vector<NetDelta>& net,
                                      const AttrSet& changed,
                                      bool has_inserts) {
  if (code_columns_.empty()) return;
  for (auto& [attr, column] : code_columns_) {
    const bool affected = changed.Contains(attr);
    if (!has_inserts && !affected) continue;
    for (const NetDelta& d : net) {
      if (d.is_insert) {
        // Net preserves append order, so insert rows arrive ascending.
        column->ApplyInsert(d.row, (*rows_)[d.row].Get(attr));
      } else if (affected && d.changed_attrs.Contains(attr)) {
        column->ApplyUpdate(d.row, (*rows_)[d.row].Get(attr));
      }
    }
    column->MaybeReintern();
  }
}

void PliCache::ReplayInsertLocked(Pli::RowId row) {
  const Tuple& t = (*rows_)[row];
  PatchEntriesLocked(
      [&](const AttrSet& attrs, Pli* pli) -> PatchResult {
        pli->SetNumRows(rows_->size());  // probe tables must cover the row
        bool ok;
        if (attrs.empty()) {
          // The ∅-partition holds every row in one cluster; the fast path
          // skips materializing the all-previous-rows partner list.
          ok = pli->ApplyInsertAllRows(row);
        } else if (!t.DefinedOn(attrs)) {
          return PatchResult::kPatched;  // the row stays out of scope, but
                                         // the row count above was patched
        } else if (attrs.size() == 1) {
          AttrId a = attrs.ids().front();
          auto it = value_indexes_.find(a);
          if (it == value_indexes_.end()) return PatchResult::kRebuild;
          // The index still describes the pre-insert instance (it is
          // patched only further down), so the cluster is pure partners.
          const Pli::Cluster& partners = ClusterOf(*it->second, *t.Get(a));
          ok = pli->ApplyInsert(row, partners, /*includes_row=*/false);
          if (ok) {
            ProbePatchInsertLocked(a, row, partners);
            MaybeRetireBloatedProbeLocked(a, *pli);
          }
        } else {
          // An oversized partner scan means re-intersecting the patched
          // sub-partitions is cheaper: fail the patch to drop the entry.
          Pli::Cluster partners;
          if (AgreeingRowsLocked(attrs, t, row, &partners, nullptr) !=
              PartnerScan::kOk) {
            return PatchResult::kRebuild;
          }
          ok = pli->ApplyInsert(row, partners, /*includes_row=*/false);
        }
        return ok ? PatchResult::kPatched : PatchResult::kRebuild;
      },
      &patches_);
  // Patch the value indexes last — they are the partner source above and
  // must describe the pre-insert instance while partitions are patched.
  for (auto& [attr, index] : value_indexes_) {
    if (const Value* v = t.Get(attr)) {
      ValueIndexApplyInsert(index.get(), row, v);
      ++patches_;
    }
  }
}

void PliCache::ReplayUpdateLocked(Pli::RowId row, const Tuple& old_row,
                                  const AttrSet& changed) {
  // `changed` — the attributes whose presence or value the net move flips,
  // diffed once by the flush; footnote-3 type changes surface as several
  // attributes at once.
  const Tuple& new_row = (*rows_)[row];
  if (changed.empty()) return;

  // Detach the row from the old-value clusters first, so the indexes list
  // exactly the row's potential partners.
  for (AttrId a : changed) {
    auto it = value_indexes_.find(a);
    if (it == value_indexes_.end()) continue;
    ValueIndexApplyUpdate(it->second.get(), row, old_row.Get(a), nullptr);
  }
  PatchEntriesLocked(
      [&](const AttrSet& attrs, Pli* pli) -> PatchResult {
        if (!attrs.Intersects(changed)) {
          return PatchResult::kUntouched;  // incl. the ∅-partition
        }
        bool ok = true;
        if (attrs.size() == 1) {
          AttrId a = attrs.ids().front();
          auto it = value_indexes_.find(a);
          if (it == value_indexes_.end()) return PatchResult::kRebuild;
          ValueIndex* index = it->second.get();
          if (const Value* old_v = old_row.Get(a)) {
            // The index already excludes `row` from the old cluster here.
            const Pli::Cluster& partners = ClusterOf(*index, *old_v);
            ok = pli->ApplyErase(row, partners, /*includes_row=*/false);
            if (ok) ProbePatchEraseLocked(a, row, partners);
          }
          if (ok) {
            if (const Value* new_v = new_row.Get(a)) {
              const Pli::Cluster& partners = ClusterOf(*index, *new_v);
              ok = pli->ApplyInsert(row, partners, /*includes_row=*/false);
              if (ok) ProbePatchInsertLocked(a, row, partners);
            }
          }
          if (ok) MaybeRetireBloatedProbeLocked(a, *pli);
        } else {
          Pli::Cluster partners;
          if (old_row.DefinedOn(attrs)) {
            if (AgreeingRowsLocked(attrs, old_row, row, &partners,
                                   nullptr) != PartnerScan::kOk) {
              return PatchResult::kRebuild;
            }
            ok = pli->ApplyErase(row, partners, /*includes_row=*/false);
          }
          if (ok && new_row.DefinedOn(attrs)) {
            if (AgreeingRowsLocked(attrs, new_row, row, &partners,
                                   nullptr) != PartnerScan::kOk) {
              return PatchResult::kRebuild;
            }
            ok = pli->ApplyInsert(row, partners, /*includes_row=*/false);
          }
        }
        return ok ? PatchResult::kPatched : PatchResult::kRebuild;
      },
      &patches_);
  // Attach the row under its new values last.
  for (AttrId a : changed) {
    auto it = value_indexes_.find(a);
    if (it == value_indexes_.end()) continue;
    if (const Value* new_v = new_row.Get(a)) {
      ValueIndexApplyInsert(it->second.get(), row, new_v);
      ++patches_;
    }
  }
}

size_t PliCache::EstimateMultiPatchScanLocked(
    const AttrSet& attrs, const std::vector<NetDelta>& net) {
  // Σ of the seed-cluster sizes both phases would scan (post-state seeds
  // approximated by the pre-splice clusters — a burst barely moves them).
  // Comparing this against the instance size is the entry's patch-vs-drop
  // call: the re-intersection a drop defers costs one O(rows) pass.
  auto seed_size = [&](const Tuple& proj) -> size_t {
    size_t seed = SIZE_MAX;
    for (AttrId a : attrs) {
      auto idx_it = value_indexes_.find(a);
      if (idx_it == value_indexes_.end()) return 0;
      auto it = idx_it->second->find(*proj.Get(a));
      if (it == idx_it->second->end()) return 0;  // unseen -> empty scan
      seed = std::min(seed, it->second.size());
    }
    return seed;
  };
  size_t total = 0;
  for (const NetDelta& d : net) {
    if (!d.changed_attrs.Intersects(attrs)) continue;  // projection sits still
    const Tuple& now = (*rows_)[d.row];
    if (!d.is_insert && d.old_row->DefinedOn(attrs)) {
      total += seed_size(*d.old_row);
    }
    if (now.DefinedOn(attrs)) total += seed_size(now);
  }
  return total;
}

bool PliCache::MultiAttrGroupPatchLocked(const AttrSet& attrs, Pli* pli,
                                         const std::vector<NetDelta>& net,
                                         bool erase, size_t* scan_budget) {
  // The rows this phase moves: leaving rows were defined on `attrs` before
  // the burst, joining rows are after; rows whose projection did not
  // change sit still (they are partners, not movers).
  std::vector<std::pair<Pli::RowId, const Tuple*>> moving;
  std::unordered_set<Pli::RowId> moving_set;
  for (const NetDelta& d : net) {
    if (!d.changed_attrs.Intersects(attrs)) continue;  // projection sits still
    const Tuple& now = (*rows_)[d.row];
    const Tuple* proj;
    if (erase) {
      if (d.is_insert || !d.old_row->DefinedOn(attrs)) continue;
      proj = d.old_row;
    } else {
      if (!now.DefinedOn(attrs)) continue;
      proj = &now;
    }
    moving.push_back({d.row, proj});
    moving_set.insert(d.row);
  }
  if (moving.empty()) return true;
  // One ClusterPatch per affected cluster. All movers sharing a cluster
  // compute the same full membership (partner scans are consistent within
  // one phase), so the patch is keyed by the full cluster's front row.
  std::unordered_map<Pli::RowId, Pli::ClusterPatch> by_front;
  Pli::Cluster partners;
  for (const auto& [row, proj] : moving) {
    if (AgreeingRowsLocked(attrs, *proj, row, &partners, scan_budget) !=
        PartnerScan::kOk) {
      return false;
    }
    Pli::Cluster full = partners;  // ∪ {row}, ascending
    full.insert(std::lower_bound(full.begin(), full.end(), row), row);
    if (full.size() < 2) continue;  // stripped on this side: no cluster
    auto [it, first_visit] = by_front.try_emplace(full.front());
    Pli::ClusterPatch& patch = it->second;
    if (first_visit) {
      if (erase) {
        // The partition currently holds the full pre-burst cluster; the
        // replacement starts as that and sheds each mover below.
        patch.old_front = full.front();
        patch.old_size = full.size();
        patch.new_rows = std::move(full);
      } else {
        // The partition (post-erase-phase) holds only the stayers; the
        // replacement is the full post-burst cluster.
        Pli::Cluster stayers;
        for (Pli::RowId r : full) {
          if (moving_set.count(r) == 0) stayers.push_back(r);
        }
        patch.old_size = stayers.size();
        patch.old_front = stayers.empty() ? 0 : stayers.front();
        patch.new_rows = std::move(full);
      }
    } else if (erase ? patch.old_size != full.size()
                     : patch.new_rows.size() != full.size()) {
      return false;  // two movers disagree about their shared cluster
    }
    if (erase) {
      auto pos = std::lower_bound(patch.new_rows.begin(),
                                  patch.new_rows.end(), row);
      if (pos == patch.new_rows.end() || *pos != row) return false;
      patch.new_rows.erase(pos);
    }
  }
  std::vector<Pli::ClusterPatch> patches;
  patches.reserve(by_front.size());
  for (auto& [front, patch] : by_front) {
    (void)front;
    patches.push_back(std::move(patch));
  }
  // Cache-built multi-attribute partitions are intersection products, so
  // defined_rows tracks grouped_rows and the delta argument is moot.
  return pli->ApplyBatch(std::move(patches), /*defined_delta=*/0);
}

void PliCache::BatchApplyLocked(const std::vector<NetDelta>& net,
                                const AttrSet& changed, size_t insert_count) {
  using namespace std::chrono_literals;
  const size_t b = net.size();
  // Per-attribute movement lists. The Value pointers reach into rows_ and
  // into the pending buffer's old tuples, both stable for the flush.
  std::unordered_map<AttrId, std::vector<ValueIndexDelta>> per_attr;
  std::vector<Pli::RowId> inserted_rows;
  inserted_rows.reserve(insert_count);
  for (const NetDelta& d : net) {
    const Tuple& now = (*rows_)[d.row];
    if (d.is_insert) {
      inserted_rows.push_back(d.row);
      for (const auto& [attr, value] : now.fields()) {
        per_attr[attr].push_back({d.row, nullptr, &value});
      }
    } else {
      for (AttrId a : d.changed_attrs) {
        per_attr[a].push_back({d.row, d.old_row->Get(a), now.Get(a)});
      }
    }
  }
  std::sort(inserted_rows.begin(), inserted_rows.end());

  // Classify the cached partitions. Multi-attribute entries whose cluster
  // count the burst saturates are dropped for lazy re-intersection from
  // the patched bases (one probe-table pass beats 2b seed scans then);
  // sparser bursts keep the entry and group-patch it in two phases around
  // the index splice. This is the burst-size-vs-cluster-count arm of the
  // adaptive policy.
  struct Work {
    AttrSet attrs;
    Pli* pli;
    bool alive = true;
    // Partner-scan allowance across both phases: one re-intersection's
    // worth of row touches. Overdrawing it means rebuilding is cheaper.
    size_t scan_budget = 0;
  };
  std::vector<Work> multi;
  std::vector<Work> single;
  Pli* empty_pli = nullptr;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.future.wait_for(0s) != std::future_status::ready) {
      ++patch_rebuilds_;
      it = DropEntryLocked(it);
      continue;
    }
    Pli* pli = it->second.future.get().get();
    if (insert_count > 0) pli->SetNumRows(rows_->size());
    const AttrSet& attrs = it->first;
    if (attrs.empty()) {
      empty_pli = pli;
    } else if (attrs.Intersects(changed)) {
      if (attrs.size() == 1) {
        single.push_back({attrs, pli});
      } else if (2 * b >= pli->NumDistinct() ||
                 EstimateMultiPatchScanLocked(attrs, net) >=
                     rows_->size() / 2) {
        // The burst saturates the entry's clusters, or the partner scans
        // alone would cost as much as the re-intersection a drop defers.
        ++patch_rebuilds_;
        it = DropEntryLocked(it);
        continue;
      } else {
        multi.push_back({attrs, pli, true, rows_->size()});
      }
    }
    ++it;
  }

  std::vector<AttrSet> failed;
  // Phase A: detach the leaving rows from the kept multi-attribute
  // entries, partner sets scanned off the still pre-batch indexes.
  for (Work& w : multi) {
    if (!MultiAttrGroupPatchLocked(w.attrs, w.pli, net, /*erase=*/true,
                                   &w.scan_budget)) {
      w.alive = false;
      failed.push_back(w.attrs);
    }
  }
  // Splice the value indexes — every affected cluster rebuilt in one
  // sorted merge — capturing the per-value replacements only for the
  // attributes whose cached single-attribute partition will group-apply
  // them (an index pinned solely for selections pays no capture at all).
  // Arena-backed partitions take the zero-copy route: the splice hands out
  // borrowed views into the spliced clusters and ApplyBatch copies each
  // replacement straight into the arena. The vector-of-vectors reference
  // keeps the historical owning-patch path. Either way the captured
  // replacements drive the probe's label patch — one pass over exactly the
  // rows the splice moved.
  std::unordered_set<AttrId> single_attrs;
  single_attrs.reserve(single.size());
  for (const Work& w : single) single_attrs.insert(w.attrs.ids().front());
  const bool arena = options_.arena_storage;
  std::unordered_map<AttrId, std::vector<Pli::ClusterPatch>> cluster_patches;
  std::unordered_map<AttrId, std::vector<Pli::ClusterPatchView>>
      cluster_patch_views;
  std::unordered_map<AttrId, ptrdiff_t> defined_deltas;
  for (auto& [attr, deltas] : per_attr) {
    auto it = value_indexes_.find(attr);
    if (it == value_indexes_.end()) continue;  // nothing cached consults it
    if (single_attrs.count(attr) == 0) {
      ValueIndexApplyUpdateBatch(it->second.get(), deltas,
                                 /*capture=*/false);
      ++batch_applies_;
      continue;
    }
    if (arena) {
      std::vector<Pli::ClusterPatchView> views =
          ValueIndexApplyUpdateBatchViews(it->second.get(), deltas);
      ++batch_applies_;
      ProbePatchBatchLocked(attr, deltas, views);
      cluster_patch_views[attr] = std::move(views);
    } else {
      std::vector<Pli::ClusterPatch> patches =
          ValueIndexApplyUpdateBatch(it->second.get(), deltas,
                                     /*capture=*/true);
      ++batch_applies_;
      ProbePatchBatchLocked(attr, deltas, Pli::MakePatchViews(patches));
      cluster_patches[attr] = std::move(patches);
    }
    ptrdiff_t dd = 0;
    for (const ValueIndexDelta& d : deltas) {
      dd += (d.new_value != nullptr ? 1 : 0) -
            (d.old_value != nullptr ? 1 : 0);
    }
    defined_deltas[attr] = dd;
  }
  for (Work& w : single) {
    AttrId a = w.attrs.ids().front();
    bool applied = false;
    if (arena) {
      auto cp = cluster_patch_views.find(a);
      applied = cp != cluster_patch_views.end() &&
                w.pli->ApplyBatch(std::move(cp->second), defined_deltas[a]);
    } else {
      auto cp = cluster_patches.find(a);
      applied = cp != cluster_patches.end() &&
                w.pli->ApplyBatch(std::move(cp->second), defined_deltas[a]);
    }
    if (!applied) {
      failed.push_back(w.attrs);
    } else {
      ++batch_applies_;
      MaybeRetireBloatedProbeLocked(a, *w.pli);
    }
  }
  // Phase B: attach the joining rows. The scans run after the splice, so
  // they see every row's final cluster position — the stayers anchor the
  // cluster lookups.
  for (Work& w : multi) {
    if (!w.alive) continue;
    if (!MultiAttrGroupPatchLocked(w.attrs, w.pli, net, /*erase=*/false,
                                   &w.scan_budget)) {
      failed.push_back(w.attrs);
    } else {
      ++batch_applies_;
    }
  }
  // The ∅-partition: appends only (an update never moves a row out of it).
  if (empty_pli != nullptr && !inserted_rows.empty()) {
    bool ok = true;
    for (Pli::RowId row : inserted_rows) {
      if (!empty_pli->ApplyInsertAllRows(row)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++batch_applies_;
    } else {
      failed.push_back(AttrSet());
    }
  }
  for (const AttrSet& attrs : failed) {
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++patch_rebuilds_;
      DropEntryLocked(it);
    }
  }
}

void PliCache::EvictLocked() {
  using namespace std::chrono_literals;
  while (lru_.size() > options_.max_entries) {
    bool erased = false;
    // Oldest-first; entries still being built (future not ready) survive.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;  // defensive; should not happen
      if (entry->second.future.wait_for(0s) != std::future_status::ready) {
        continue;
      }
      entries_.erase(entry);
      lru_.erase(std::next(it).base());
      ++evictions_;
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.evictions", 1);
      erased = true;
      break;
    }
    if (!erased) break;  // everything over budget is still building
  }
  if (options_.memory_budget_bytes == 0) return;
  // Byte-budget pass: keep shedding the least recently used completed
  // entries until the accounted footprint fits. Cost-aware in the LRU
  // sense — the entries least likely to be re-asked-for pay first — and
  // bounded: once only pinned bases (or in-flight builds) remain, Get's
  // miss path degrades to uncached serves instead.
  while (AccountedBytesLocked() > options_.memory_budget_bytes &&
         !lru_.empty()) {
    bool erased = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;
      if (entry->second.future.wait_for(0s) != std::future_status::ready) {
        continue;
      }
      const size_t bytes =
          entry->second.future.get()->MemoryBytes() + kPerEntryOverhead;
      bytes_plis_ -= std::min(bytes_plis_, bytes);
      entries_.erase(entry);
      lru_.erase(std::next(it).base());
      ++evictions_;
      ++budget_evictions_;
      FLEXREL_TELEMETRY_COUNT("engine.pli_cache.evictions", 1);
      FLEXREL_TELEMETRY_COUNT("engine.cache.budget_evictions", 1);
      erased = true;
      break;
    }
    if (!erased) break;  // only unready entries left
  }
}

void PliCache::AccountMemoryLocked() {
  using namespace std::chrono_literals;
  size_t plis = 0;
  for (const auto& [attrs, entry] : entries_) {
    (void)attrs;
    // In-flight builds are charged on their completion sweep.
    if (entry.future.wait_for(0s) != std::future_status::ready) continue;
    plis += entry.future.get()->MemoryBytes() + kPerEntryOverhead;
  }
  size_t probes = 0;
  for (const auto& [attr, probe] : probes_) {
    (void)attr;
    probes += probe->labels.capacity() * sizeof(int32_t) + kPerEntryOverhead;
  }
  size_t indexes = 0;
  for (const auto& [attr, index] : value_indexes_) {
    (void)attr;
    indexes += kPerEntryOverhead;
    for (const auto& [value, rows] : *index) {
      (void)value;
      indexes += sizeof(Value) + kPerValueEstimate +
                 rows.capacity() * sizeof(Pli::RowId);
    }
  }
  size_t columns = 0;
  for (const auto& [attr, column] : code_columns_) {
    (void)attr;
    columns += column->MemoryBytes() + kPerEntryOverhead;
  }
  bytes_plis_ = plis;
  bytes_probes_ = probes;
  bytes_indexes_ = indexes;
  bytes_columns_ = columns;
  FLEXREL_TELEMETRY_GAUGE_SET("engine.cache.bytes_plis", plis);
  FLEXREL_TELEMETRY_GAUGE_SET("engine.cache.bytes_probes", probes);
  FLEXREL_TELEMETRY_GAUGE_SET("engine.cache.bytes_indexes", indexes);
  FLEXREL_TELEMETRY_GAUGE_SET("engine.cache.bytes_columns", columns);
}

PliCache::StatsSnapshot PliCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_;
  s.evictions = evictions_;
  s.cached_entries = entries_.size();
  s.patches = patches_;
  s.patch_rebuilds = patch_rebuilds_;
  s.batch_applies = batch_applies_;
  s.full_drops = full_drops_;
  s.probe_patches = probe_patches_;
  s.probe_rebuilds = probe_rebuilds_;
  s.pending_deltas = pending_.size();
  s.flushes = flushes_;
  s.publishes = publishes_;
  s.epoch = epoch_;
  s.bytes_plis = bytes_plis_;
  s.bytes_probes = bytes_probes_;
  s.bytes_indexes = bytes_indexes_;
  s.bytes_columns = bytes_columns_;
  s.budget_evictions = budget_evictions_;
  s.uncached_serves = uncached_serves_;
  s.flush_aborts = flush_aborts_;
  return s;
}

}  // namespace flexrel
