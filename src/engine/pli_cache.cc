#include "engine/pli_cache.h"

#include <chrono>
#include <utility>

namespace flexrel {

PliCache::PliCache(const std::vector<Tuple>* rows)
    : PliCache(rows, Options()) {}

PliCache::PliCache(const std::vector<Tuple>* rows, Options options)
    : rows_(rows), options_(options) {}

std::shared_ptr<const Pli> PliCache::Get(const AttrSet& attrs) {
  std::promise<PliPtr> promise;
  std::shared_future<PliPtr> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++hits_;
      if (it->second.evictable) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      // Copy the future and wait outside the lock: the thread fulfilling it
      // may itself need the lock for recursive sub-partition lookups.
      std::shared_future<PliPtr> pending = it->second.future;
      lock.unlock();
      return pending.get();
    }
    ++misses_;
    Entry entry;
    entry.future = future = promise.get_future().share();
    entry.evictable = attrs.size() > 1;
    if (entry.evictable) {
      lru_.push_front(attrs);
      entry.lru_pos = lru_.begin();
    }
    entries_.emplace(attrs, std::move(entry));
    EvictLocked();
  }
  // Build outside the lock; concurrent requesters for the same key block on
  // the shared future instead of rebuilding.
  try {
    PliPtr pli = BuildFor(attrs);
    promise.set_value(std::move(pli));
  } catch (...) {
    // Un-poison the slot before publishing the failure: requesters already
    // waiting see this exception, but the next Get() rebuilds instead of
    // rethrowing a stale (possibly transient) error forever.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(attrs);
      if (it != entries_.end()) {
        if (it->second.evictable) lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
  }
  return future.get();
}

PliCache::PliPtr PliCache::BuildFor(const AttrSet& attrs) {
  if (attrs.size() <= 1) {
    Pli built = attrs.empty() ? Pli::Build(*rows_, attrs)
                              : Pli::Build(*rows_, attrs.ids().front());
    return std::make_shared<const Pli>(std::move(built));
  }
  // X = prefix ∪ {last}: intersect the cached prefix partition (the more
  // refined operand, hence the outer one) with the last attribute's,
  // through that attribute's memoized probe table.
  AttrId last = attrs.ids().back();
  AttrSet prefix = attrs.Minus(AttrSet::Of(last));
  PliPtr left = Get(prefix);
  std::shared_ptr<const std::vector<int32_t>> probe = ProbeFor(last);
  return std::make_shared<const Pli>(left->IntersectWithProbe(*probe));
}

std::shared_ptr<const std::vector<int32_t>> PliCache::ProbeFor(AttrId attr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = probes_.find(attr);
    if (it != probes_.end()) return it->second;
  }
  PliPtr pli = Get(AttrSet::Of(attr));
  auto probe =
      std::make_shared<const std::vector<int32_t>>(pli->ProbeTable());
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical tables; first insert wins.
  return probes_.emplace(attr, std::move(probe)).first->second;
}

std::shared_ptr<const PliCache::ValueIndex> PliCache::IndexFor(AttrId attr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = value_indexes_.find(attr);
    if (it != value_indexes_.end()) return it->second;
  }
  // No reserve: the map holds one entry per *distinct* value, and typical
  // indexed attributes (the bench's jobtype shape) have few of those.
  auto index = std::make_shared<ValueIndex>();
  for (size_t i = 0; i < rows_->size(); ++i) {
    if (const Value* v = (*rows_)[i].Get(attr)) {
      (*index)[*v].push_back(static_cast<Pli::RowId>(i));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical indexes; first insert wins.
  return value_indexes_.emplace(attr, std::move(index)).first->second;
}

void PliCache::EvictLocked() {
  using namespace std::chrono_literals;
  while (lru_.size() > options_.max_entries) {
    bool erased = false;
    // Oldest-first; entries still being built (future not ready) survive.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;  // defensive; should not happen
      if (entry->second.future.wait_for(0s) != std::future_status::ready) {
        continue;
      }
      entries_.erase(entry);
      lru_.erase(std::next(it).base());
      ++evictions_;
      erased = true;
      break;
    }
    if (!erased) break;  // everything over budget is still building
  }
}

size_t PliCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t PliCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t PliCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t PliCache::cached_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace flexrel
