// Per-attribute dictionary codec: the columnar value plane.
//
// Every hot structure in the engine — stripped partitions, probe tables,
// value indexes, hash-join signatures, agree-set samples — only ever needs
// value *identity* per attribute, never the value itself. A CodeColumn
// interns one attribute's values into dense uint32_t codes and holds the
// relation's column of codes contiguously: partition construction becomes a
// counting sort over plain integers (Pli::BuildFromCodes), equality
// selections become one small-dictionary lookup plus an array-indexed
// bucket read, and pair comparison in hybrid discovery's sampler becomes
// two integer loads. The PliCache owns one CodeColumn per requested
// attribute (CodeColumnFor) and patches it through the same mutation hooks
// that patch every other cached structure, so the column is always exactly
// as fresh as the partitions built from it.
//
// Code space. Code 0 is reserved for the explicit Value::Null (null equals
// null under the paper's Kleene semantics, so nulls cluster — they need a
// code like any other value); kMissingCode marks a row that does not carry
// the attribute at all (flexible relations: absent is not null). Codes are
// append-only within a dictionary *generation*: an update introducing a
// fresh value (including a footnote-3 type change re-typing the attribute,
// which arrives through the cache's multi-attribute delta path) interns it
// at the next free code and never disturbs existing assignments, so
// structures built earlier in the generation stay comparable. Value churn
// leaves dead codes behind (interned values no row carries any more); once
// the dictionary outgrows its live codes 2:1 (past a slack floor) the
// column re-interns — live values are recoded densely, the generation
// bumps, and every consumer that fetches the column afresh sees the
// compact space. Consumers must never mix codes across column fetches:
// each fetched column is self-consistent, the generation tag exists so
// tests (and debuggers) can tell two code spaces apart.
//
// Telemetry (all under engine.codec.*): `interned_codes` counts fresh
// interns (builds included), `generation_bumps` counts generation
// increments (initial builds and re-interns alike), `reintern_flushes`
// counts staleness-triggered re-intern passes.
//
// Thread-safety: none of its own — the owning PliCache publishes columns
// through the same COW snapshot protocol as partitions (readers hold
// frozen copies), and patches them under its writer lock.

#ifndef FLEXREL_ENGINE_DICTIONARY_H_
#define FLEXREL_ENGINE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace flexrel {

class CodeColumn {
 public:
  using Code = uint32_t;
  using RowId = uint32_t;

  /// The reserved code of the explicit Value::Null — always interned, even
  /// in a column that has never seen a null.
  static constexpr Code kNullCode = 0;

  /// The "row does not carry this attribute" marker. Never a valid code:
  /// every real code is < code_bound() and code_bound() can never reach
  /// UINT32_MAX (the relation would not fit in memory first).
  static constexpr Code kMissingCode = UINT32_MAX;

  /// One pass over the instance: intern each present value, record each
  /// row's code (kMissingCode when absent), bucket rows per code.
  static CodeColumn Build(const std::vector<Tuple>& rows, AttrId attr);

  AttrId attr() const { return attr_; }
  size_t num_rows() const { return codes_.size(); }
  /// Rows carrying the attribute (== Σ bucket sizes).
  size_t defined() const { return defined_; }
  /// Codes some row currently carries (nonempty buckets). Dead codes —
  /// interned values no row holds any more — are code_bound() minus this.
  size_t live_codes() const { return live_codes_; }
  /// Bumps on every re-intern; 1 for a fresh build. Codes from different
  /// generations are not comparable.
  uint64_t generation() const { return generation_; }
  /// Exclusive upper bound of the code space: every real code is below it,
  /// kMissingCode above it. Sizes the counting-sort scratch.
  Code code_bound() const { return static_cast<Code>(values_.size()); }

  /// Row -> code, kMissingCode for rows lacking the attribute. The dense
  /// column every coded hot path iterates.
  const std::vector<Code>& codes() const { return codes_; }

  /// The interned value behind a code. `code` must be < code_bound().
  const Value& ValueOf(Code code) const { return values_[code]; }

  /// The code of `value`, or kMissingCode when it was never interned — the
  /// selection fast path: one lookup in the (small) dictionary replaces a
  /// hash of every candidate row's value.
  Code CodeOf(const Value& value) const {
    auto it = interned_.find(value);
    return it == interned_.end() ? kMissingCode : it->second;
  }

  /// Ascending rows currently coded `code` — the dense code->cluster array
  /// that replaces the value-hashed index lookup. `code` < code_bound();
  /// empty for dead codes.
  const std::vector<RowId>& Bucket(Code code) const { return buckets_[code]; }

  // ------------------------------------------------------------------
  // Incremental maintenance, driven by the PliCache flush in lockstep
  // with the partition/index/probe patches.
  // ------------------------------------------------------------------

  /// Row `row` was appended carrying `value` (null pointer: the row lacks
  /// the attribute). Rows must arrive in ascending order, as the flush
  /// replays them.
  void ApplyInsert(RowId row, const Value* value);

  /// Row `row` changed to `value` on this attribute (null pointer: the
  /// attribute was removed — the footnote-3 type-change shape). The old
  /// code is read off the column itself; fresh values intern append-only.
  void ApplyUpdate(RowId row, const Value* value);

  /// Re-interns when value churn has left the dictionary 2x (plus slack)
  /// larger than its live codes: live values are recoded densely in old-
  /// code order, the generation bumps. Called by the cache once per flush;
  /// cheap no-op while the space is healthy. Returns true when it fired.
  bool MaybeReintern();

  /// Structural self-check for tests: bucket/column/dictionary coherence,
  /// ascending buckets, exact defined/live counts, the reserved null code.
  bool CheckInvariants(std::string* error = nullptr) const;

  /// Approximate heap footprint (code column, buckets, dictionary) — the
  /// cache's memory-budget accounting input. Values are estimated at a
  /// flat per-entry size; the budget is advisory, not an allocator.
  size_t MemoryBytes() const;

 private:
  Code Intern(const Value& value);

  AttrId attr_ = 0;
  std::unordered_map<Value, Code, ValueHash> interned_;
  std::vector<Value> values_;                 // code -> value
  std::vector<std::vector<RowId>> buckets_;   // code -> ascending rows
  std::vector<Code> codes_;                   // row -> code / kMissingCode
  size_t defined_ = 0;
  size_t live_codes_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_DICTIONARY_H_
