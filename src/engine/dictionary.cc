#include "engine/dictionary.h"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

namespace {

// Re-intern once the dictionary outgrows its live codes 2:1 — but never
// below this floor: tiny dictionaries re-coding on every churn would pay
// the O(rows) recode pass for nothing.
constexpr size_t kReinternFloor = 64;

}  // namespace

CodeColumn::Code CodeColumn::Intern(const Value& value) {
  auto [it, fresh] = interned_.try_emplace(value, code_bound());
  if (fresh) {
    values_.push_back(value);
    buckets_.emplace_back();
    FLEXREL_TELEMETRY_COUNT("engine.codec.interned_codes", 1);
  }
  return it->second;
}

CodeColumn CodeColumn::Build(const std::vector<Tuple>& rows, AttrId attr) {
  CodeColumn column;
  column.attr_ = attr;
  column.generation_ = 1;
  FLEXREL_TELEMETRY_COUNT("engine.codec.generation_bumps", 1);
  // Code 0 is the reserved null, interned up front so CodeOf(Null) is 0
  // whether or not the instance carries an explicit null.
  column.Intern(Value::Null());
  column.codes_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* v = rows[i].Get(attr);
    if (v == nullptr) {
      column.codes_.push_back(kMissingCode);
      continue;
    }
    const Code code = column.Intern(*v);
    column.codes_.push_back(code);
    std::vector<RowId>& bucket = column.buckets_[code];
    if (bucket.empty()) ++column.live_codes_;
    bucket.push_back(static_cast<RowId>(i));  // i ascending -> bucket sorted
    ++column.defined_;
  }
  return column;
}

void CodeColumn::ApplyInsert(RowId row, const Value* value) {
  if (row >= codes_.size()) {
    codes_.resize(static_cast<size_t>(row) + 1, kMissingCode);
  }
  if (value == nullptr) return;  // codes_[row] stays kMissingCode
  const Code code = Intern(*value);
  codes_[row] = code;
  std::vector<RowId>& bucket = buckets_[code];
  if (bucket.empty()) ++live_codes_;
  if (bucket.empty() || bucket.back() < row) {
    bucket.push_back(row);  // appends (the flush replay order) stay O(1)
  } else {
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), row), row);
  }
  ++defined_;
}

void CodeColumn::ApplyUpdate(RowId row, const Value* value) {
  const Code old_code = row < codes_.size() ? codes_[row] : kMissingCode;
  const Code new_code = value == nullptr ? kMissingCode : Intern(*value);
  if (old_code == new_code) return;  // re-valued to what it held: no move
  if (old_code != kMissingCode) {
    std::vector<RowId>& bucket = buckets_[old_code];
    auto pos = std::lower_bound(bucket.begin(), bucket.end(), row);
    if (pos != bucket.end() && *pos == row) bucket.erase(pos);
    if (bucket.empty()) --live_codes_;  // the code is dead until re-carried
    --defined_;
  }
  if (row >= codes_.size()) {
    codes_.resize(static_cast<size_t>(row) + 1, kMissingCode);
  }
  codes_[row] = new_code;
  if (new_code == kMissingCode) return;
  std::vector<RowId>& bucket = buckets_[new_code];
  if (bucket.empty()) ++live_codes_;
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), row), row);
  ++defined_;
}

bool CodeColumn::MaybeReintern() {
  // The reserved null code is "live" for code-space purposes whether or
  // not any row carries it — it can never be retired.
  const size_t keep = live_codes_ + (buckets_[kNullCode].empty() ? 1 : 0);
  if (values_.size() <= kReinternFloor || values_.size() <= 2 * keep) {
    return false;
  }
  FLEXREL_TELEMETRY_COUNT("engine.codec.reintern_flushes", 1);
  FLEXREL_TELEMETRY_COUNT("engine.codec.generation_bumps", 1);
  // Recode densely in old-code order (deterministic): code 0 stays the
  // null, live codes keep their relative order, dead codes vanish.
  std::vector<Code> remap(values_.size(), kMissingCode);
  std::vector<Value> values;
  std::vector<std::vector<RowId>> buckets;
  values.reserve(keep);
  buckets.reserve(keep);
  for (Code old_code = 0; old_code < values_.size(); ++old_code) {
    if (old_code != kNullCode && buckets_[old_code].empty()) continue;
    remap[old_code] = static_cast<Code>(values.size());
    values.push_back(std::move(values_[old_code]));
    buckets.push_back(std::move(buckets_[old_code]));
  }
  for (Code& c : codes_) {
    if (c != kMissingCode) c = remap[c];
  }
  interned_.clear();
  interned_.reserve(values.size());
  for (Code c = 0; c < values.size(); ++c) interned_.emplace(values[c], c);
  values_ = std::move(values);
  buckets_ = std::move(buckets);
  ++generation_;
  return true;
}

size_t CodeColumn::MemoryBytes() const {
  size_t bytes = codes_.capacity() * sizeof(Code);
  bytes += buckets_.capacity() * sizeof(std::vector<RowId>);
  for (const std::vector<RowId>& bucket : buckets_) {
    bytes += bucket.capacity() * sizeof(RowId);
  }
  // Dictionary sides: one interned Value plus one hash slot per code. A
  // Value's payload is opaque here; charge a flat estimate per entry.
  constexpr size_t kPerValueEstimate = 48;
  bytes += values_.capacity() * (sizeof(Value) + kPerValueEstimate);
  bytes += interned_.size() * (sizeof(Value) + sizeof(Code) + 16);
  return bytes;
}

bool CodeColumn::CheckInvariants(std::string* error) const {
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (values_.empty() || !values_[kNullCode].is_null()) {
    return fail("code 0 is not the reserved null");
  }
  if (values_.size() != buckets_.size() ||
      values_.size() != interned_.size()) {
    return fail("dictionary/bucket/intern-map sizes disagree");
  }
  for (Code c = 0; c < values_.size(); ++c) {
    auto it = interned_.find(values_[c]);
    if (it == interned_.end() || it->second != c) {
      return fail(StrCat("code ", c, " not interned back to itself"));
    }
  }
  size_t defined = 0;
  size_t live = 0;
  for (Code c = 0; c < buckets_.size(); ++c) {
    const std::vector<RowId>& bucket = buckets_[c];
    if (!bucket.empty()) ++live;
    defined += bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (i > 0 && bucket[i - 1] >= bucket[i]) {
        return fail(StrCat("bucket of code ", c, " not strictly ascending"));
      }
      if (bucket[i] >= codes_.size() || codes_[bucket[i]] != c) {
        return fail(StrCat("bucket of code ", c,
                           " lists a row coded differently"));
      }
    }
  }
  if (defined != defined_) return fail("defined count drifted");
  if (live != live_codes_) return fail("live-code count drifted");
  size_t coded = 0;
  for (size_t row = 0; row < codes_.size(); ++row) {
    const Code c = codes_[row];
    if (c == kMissingCode) continue;
    if (c >= values_.size()) return fail(StrCat("row ", row, " code OOB"));
    ++coded;
  }
  if (coded != defined_) {
    return fail("column/bucket defined counts disagree");
  }
  return true;
}

}  // namespace flexrel
