// Level-wise parallel dependency discovery over the partition engine.
//
// The candidate space is the lattice of determinant sets, explored level by
// level (|X| = 1, 2, ...). Per level all candidate maximal-RHS computations
// are independent — each reads the instance through the shared PliCache —
// so they fan out across a small worker pool. Minimality pruning via the
// axiom systems (core/closure.h) is order-dependent and runs as a cheap
// sequential pass per level, in the exact enumeration order of the
// brute-force path, so engine results are bit-identical to
// core/discovery.cc's reference implementation.

#ifndef FLEXREL_ENGINE_PARALLEL_DISCOVERY_H_
#define FLEXREL_ENGINE_PARALLEL_DISCOVERY_H_

#include <vector>

#include "core/dependency_set.h"
#include "core/discovery.h"
#include "engine/validator.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace flexrel {

/// Knobs of the engine traversal. Mirrors core's DiscoveryOptions plus the
/// engine-specific resources; core/discovery.cc translates between the two.
struct EngineDiscoveryOptions {
  /// Maximal determinant size explored.
  size_t max_lhs_size = 2;
  /// Report generators only (prune candidates implied by earlier results).
  bool minimal_only = true;
  /// Worker threads per level; 0 picks std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// LRU bound of the partition cache (multi-attribute entries).
  size_t cache_max_entries = 1024;
  /// Pin the partition cache to the historical vector-of-vectors cluster
  /// storage instead of the CSR arena (PliCacheOptions::arena_storage) —
  /// the reference mode bench_discovery compares the arena against.
  bool reference_storage = false;
  /// Run the partition cache's dictionary-encoded value plane
  /// (PliCacheOptions::use_codes): single-attribute partitions build by
  /// counting sort and the hybrid sampler compares codes instead of
  /// Values. False pins the value-keyed oracle — results are bit-identical
  /// either way (engine_dictionary_test soaks it; bench_discovery carries
  /// the value-keyed twin).
  bool use_codes = true;
  /// Lattice traversal: exact level-wise validation of every candidate, or
  /// the HyFD-style sample-then-validate loop (hybrid_discovery.h). Both
  /// return bit-identical results; level-wise stays the default so it
  /// remains the pinnable oracle the hybrid path is differentially tested
  /// and benched against.
  DiscoveryStrategy strategy = DiscoveryStrategy::kLevelWise;
  /// Hybrid only: keep running sampling rounds while the fraction of
  /// compared pairs that teach the evidence store something new stays at or
  /// above this. Below it, sampling has saturated and exact validation is
  /// the better use of the next cycle.
  double hybrid_min_efficiency = 0.02;
  /// Hybrid only: hard cap on sampling rounds per discovery run (the
  /// efficiency threshold is the intended stop; this bounds adversarial
  /// instances where fresh evidence trickles forever).
  size_t hybrid_max_rounds = 16;
  /// Hybrid only: before validating a level, extra sampling rounds are
  /// worth their cost while more than this fraction of the level's
  /// candidates survives evidence pruning (the adaptive switch back from
  /// validation to sampling).
  double hybrid_refine_fraction = 0.5;
  /// Cooperative execution control (util/exec_context.h): deadline,
  /// cancellation token, and memory budget for the run. Not owned; must
  /// outlive the call. Null (the default) means unbounded. The run polls
  /// at level and candidate boundaries and unwinds with the verified-
  /// so-far level prefix — see DiscoveryRunInfo for the contract. The
  /// context's memory budget seeds the partition cache's
  /// memory_budget_bytes on the rows-based entry points (which own their
  /// cache); validator-based callers configure their own cache.
  const ExecContext* exec = nullptr;
};

/// Outcome report of one discovery run, for callers that set an
/// ExecContext. `status` is OK for a run that completed, kCancelled /
/// kDeadlineExceeded when the context tripped. The partial-result
/// contract: the returned dependencies are exactly what a full run
/// restricted to determinants of size <= completed_levels would emit — a
/// level either completes (validated, pruned, and emitted whole, in
/// enumeration order) or contributes nothing; a level in flight when the
/// context trips is discarded entirely.
struct DiscoveryRunInfo {
  Status status;
  /// Lattice levels fully verified and emitted (max determinant size
  /// covered by the result).
  size_t completed_levels = 0;
  /// True iff the run stopped early — `status` then holds why.
  bool partial = false;
};

/// The single point translating core's DiscoveryOptions into engine knobs —
/// every delegating caller (core/discovery.cc, workload/generator.cc) goes
/// through here so the two option structs cannot drift.
EngineDiscoveryOptions ToEngineOptions(const DiscoveryOptions& options);

/// All determinant candidates of size `k` over `universe`, in the canonical
/// combination order shared with the brute-force enumerator. Exposed for
/// tests.
std::vector<AttrSet> LatticeLevel(const AttrSet& universe, size_t k);

/// Engine-backed counterparts of core's DiscoverAttrDeps / DiscoverFuncDeps
/// / DiscoverDependencies; identical results, partition-based validation.
/// A non-null `info` receives the run outcome (status / completed levels /
/// partial flag) — the only way to distinguish a complete result from the
/// verified prefix of a cancelled or deadline-exceeded run.
std::vector<AttrDep> EngineDiscoverAttrDeps(
    const std::vector<Tuple>& rows, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

std::vector<FuncDep> EngineDiscoverFuncDeps(
    const std::vector<Tuple>& rows, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

DependencySet EngineDiscoverDependencies(
    const std::vector<Tuple>& rows, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

/// Variants over a caller-provided validator, letting several discovery
/// passes (and instance-level audits) share one partition cache.
std::vector<AttrDep> EngineDiscoverAttrDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

std::vector<FuncDep> EngineDiscoverFuncDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

DependencySet EngineDiscoverDependencies(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options = {},
    DiscoveryRunInfo* info = nullptr);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PARALLEL_DISCOVERY_H_
