// Atomic values of the relational substrate.
//
// The paper's model (Section 2.1) defines tuples as mappings from attributes
// to values of given *atomic* domains; we provide null, bool, 64-bit int,
// double and string values. Null participates only as an explicit marker in
// the null-padded decomposition baselines (Section 3.1.1) — flexible
// relations themselves never need it, which is precisely the paper's point.

#ifndef FLEXREL_RELATIONAL_VALUE_H_
#define FLEXREL_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace flexrel {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

/// Returns the canonical name of a value type ("null", "bool", ...).
const char* ValueTypeName(ValueType type);

/// Immutable atomic value. Total ordering: values order first by type tag,
/// then by payload, which gives deterministic sorts across heterogeneous
/// collections (needed for canonical printing and multiset comparison).
class Value {
 public:
  /// Constructs the null marker.
  Value() : rep_(std::monostate{}) {}

  /// Named constructors.
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Real(double d) { return Value(Rep(d)); }
  static Value Str(std::string s) { return Value(Rep(std::move(s))); }
  static Value Str(const char* s) { return Value(Rep(std::string(s))); }

  /// The runtime type tag.
  ValueType type() const { return static_cast<ValueType>(rep_.index()); }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the value must hold the requested type.
  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Three-way comparison: negative / zero / positive like strcmp.
  /// Cross-type values order by type tag; null sorts first and equals null.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash compatible with operator==.
  size_t Hash() const;

  /// Renders the value for diagnostics: null, true, 42, 3.5, 'text'.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_VALUE_H_
