#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace flexrel {

Status Relation::Insert(Tuple t) {
  if (t.attrs() != scheme_) {
    return Status::ConstraintViolation(
        StrCat("tuple attributes ", t.attrs().ToString(),
               " do not match relation scheme ", scheme_.ToString()));
  }
  rows_.push_back(std::move(t));
  return Status::OK();
}

void Relation::Deduplicate() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

size_t Relation::CountNulls() const {
  size_t nulls = 0;
  for (const Tuple& t : rows_) {
    for (const auto& [attr, value] : t.fields()) {
      (void)attr;
      if (value.is_null()) ++nulls;
    }
  }
  return nulls;
}

bool Relation::EqualsUnordered(const Relation& other) const {
  if (scheme_ != other.scheme_ || rows_.size() != other.rows_.size()) {
    return false;
  }
  std::vector<Tuple> a = rows_;
  std::vector<Tuple> b = other.rows_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

std::string Relation::ToString(const AttrCatalog& catalog) const {
  std::ostringstream os;
  os << name_ << scheme_.ToString(catalog) << " (" << rows_.size() << " rows)\n";
  for (const Tuple& t : rows_) os << "  " << t.ToString(catalog) << "\n";
  return os.str();
}

}  // namespace flexrel
