#include "relational/domain.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

Domain Domain::Any(ValueType type) { return Domain(Kind::kAny, type); }

Result<Domain> Domain::Enumerated(std::vector<Value> values) {
  if (values.empty()) {
    return Status::InvalidArgument("enumerated domain must be non-empty");
  }
  ValueType t = values.front().type();
  if (t == ValueType::kNull) {
    return Status::InvalidArgument("null cannot be a domain value");
  }
  for (const Value& v : values) {
    if (v.type() != t) {
      return Status::InvalidArgument(
          StrCat("mixed types in enumerated domain: ", ValueTypeName(t),
                 " vs ", ValueTypeName(v.type())));
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d(Kind::kEnumerated, t);
  d.values_ = std::move(values);
  return d;
}

Result<Domain> Domain::IntRange(int64_t lo, int64_t hi) {
  if (lo > hi) {
    return Status::InvalidArgument(StrCat("bad int range [", lo, ", ", hi, "]"));
  }
  Domain d(Kind::kIntRange, ValueType::kInt);
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

bool Domain::Contains(const Value& v) const {
  if (v.type() != type_) return false;
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kEnumerated:
      return std::binary_search(values_.begin(), values_.end(), v);
    case Kind::kIntRange:
      return v.as_int() >= lo_ && v.as_int() <= hi_;
  }
  return false;
}

std::optional<uint64_t> Domain::Cardinality() const {
  switch (kind_) {
    case Kind::kAny:
      if (type_ == ValueType::kBool) return 2;
      return std::nullopt;
    case Kind::kEnumerated:
      return values_.size();
    case Kind::kIntRange:
      return static_cast<uint64_t>(hi_ - lo_) + 1;
  }
  return std::nullopt;
}

Result<Domain> Domain::RestrictTo(const std::vector<Value>& keep) const {
  for (const Value& v : keep) {
    if (!Contains(v)) {
      return Status::InvalidArgument(
          StrCat("restriction value ", v.ToString(), " outside domain ",
                 ToString()));
    }
  }
  return Enumerated(keep);
}

bool Domain::IsSubdomainOf(const Domain& other) const {
  if (type_ != other.type_) return false;
  switch (kind_) {
    case Kind::kAny:
      // An unrestricted domain is only contained in another unrestricted one.
      return other.kind_ == Kind::kAny;
    case Kind::kEnumerated:
      for (const Value& v : values_) {
        if (!other.Contains(v)) return false;
      }
      return true;
    case Kind::kIntRange:
      if (other.kind_ == Kind::kAny) return true;
      if (other.kind_ == Kind::kIntRange) {
        return lo_ >= other.lo_ && hi_ <= other.hi_;
      }
      // Range within enumerated: check each member (ranges are small in
      // practice; guard against absurd spans).
      if (static_cast<uint64_t>(hi_ - lo_) > 1u << 20) return false;
      for (int64_t v = lo_; v <= hi_; ++v) {
        if (!other.Contains(Value::Int(v))) return false;
      }
      return true;
  }
  return false;
}

Value Domain::Sample(Rng* rng) const {
  switch (kind_) {
    case Kind::kEnumerated:
      return values_[rng->Index(values_.size())];
    case Kind::kIntRange:
      return Value::Int(rng->UniformInt(lo_, hi_));
    case Kind::kAny:
      break;
  }
  switch (type_) {
    case ValueType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case ValueType::kInt:
      return Value::Int(rng->UniformInt(0, 1 << 20));
    case ValueType::kDouble:
      return Value::Real(rng->UniformDouble() * 1e6);
    case ValueType::kString:
      return Value::Str(StrCat("s", rng->UniformInt(0, 1 << 20)));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

std::string Domain::ToString() const {
  switch (kind_) {
    case Kind::kAny:
      return ValueTypeName(type_);
    case Kind::kEnumerated: {
      std::vector<std::string> parts;
      parts.reserve(values_.size());
      for (const Value& v : values_) parts.push_back(v.ToString());
      return "{" + Join(parts, ", ") + "}";
    }
    case Kind::kIntRange:
      return StrCat("int[", lo_, "..", hi_, "]");
  }
  return "?";
}

bool Domain::operator==(const Domain& other) const {
  return kind_ == other.kind_ && type_ == other.type_ &&
         values_ == other.values_ && lo_ == other.lo_ && hi_ == other.hi_;
}

}  // namespace flexrel
