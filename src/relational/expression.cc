#include "relational/expression.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kUnknown;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kUnknown;
}

TriBool TriNot(TriBool a) {
  if (a == TriBool::kTrue) return TriBool::kFalse;
  if (a == TriBool::kFalse) return TriBool::kTrue;
  return TriBool::kUnknown;
}

const char* TriBoolName(TriBool t) {
  switch (t) {
    case TriBool::kFalse:
      return "false";
    case TriBool::kTrue:
      return "true";
    case TriBool::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Compare(AttrId attr, CmpOp op, Value literal) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kCompare));
  e->attr_ = attr;
  e->op_ = op;
  e->literal_ = std::move(literal);
  return e;
}

ExprPtr Expr::Eq(AttrId attr, Value literal) {
  return Compare(attr, CmpOp::kEq, std::move(literal));
}

ExprPtr Expr::In(AttrId attr, std::vector<Value> values) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kIn));
  e->attr_ = attr;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  e->values_ = std::move(values);
  return e;
}

ExprPtr Expr::Exists(AttrId attr) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kExists));
  e->attr_ = attr;
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kAnd));
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kOr));
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kNot));
  e->left_ = std::move(a);
  return e;
}

ExprPtr Expr::Const(TriBool value) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kConst));
  e->const_value_ = value;
  return e;
}

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Const(TriBool::kTrue);
  ExprPtr acc = conjuncts.front();
  for (size_t i = 1; i < conjuncts.size(); ++i) acc = And(acc, conjuncts[i]);
  return acc;
}

TriBool Expr::Eval(const Tuple& t) const {
  switch (kind_) {
    case ExprKind::kCompare: {
      const Value* v = t.Get(attr_);
      if (v == nullptr || v->is_null()) return TriBool::kUnknown;
      if (v->type() != literal_.type()) return TriBool::kFalse;
      int c = v->Compare(literal_);
      bool r = false;
      switch (op_) {
        case CmpOp::kEq:
          r = c == 0;
          break;
        case CmpOp::kNe:
          r = c != 0;
          break;
        case CmpOp::kLt:
          r = c < 0;
          break;
        case CmpOp::kLe:
          r = c <= 0;
          break;
        case CmpOp::kGt:
          r = c > 0;
          break;
        case CmpOp::kGe:
          r = c >= 0;
          break;
      }
      return r ? TriBool::kTrue : TriBool::kFalse;
    }
    case ExprKind::kIn: {
      const Value* v = t.Get(attr_);
      if (v == nullptr || v->is_null()) return TriBool::kUnknown;
      return std::binary_search(values_.begin(), values_.end(), *v)
                 ? TriBool::kTrue
                 : TriBool::kFalse;
    }
    case ExprKind::kExists:
      // A present-but-null field counts as absent: null encodes "does not
      // apply" in the decomposition baselines.
      {
        const Value* v = t.Get(attr_);
        return (v != nullptr && !v->is_null()) ? TriBool::kTrue
                                               : TriBool::kFalse;
      }
    case ExprKind::kAnd:
      return TriAnd(left_->Eval(t), right_->Eval(t));
    case ExprKind::kOr:
      return TriOr(left_->Eval(t), right_->Eval(t));
    case ExprKind::kNot:
      return TriNot(left_->Eval(t));
    case ExprKind::kConst:
      return const_value_;
  }
  return TriBool::kUnknown;
}

void Expr::CollectAttrs(AttrSet* all, AttrSet* value_reads) const {
  switch (kind_) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
      all->Insert(attr_);
      value_reads->Insert(attr_);
      break;
    case ExprKind::kExists:
      all->Insert(attr_);
      break;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      left_->CollectAttrs(all, value_reads);
      right_->CollectAttrs(all, value_reads);
      break;
    case ExprKind::kNot:
      left_->CollectAttrs(all, value_reads);
      break;
    case ExprKind::kConst:
      break;
  }
}

AttrSet Expr::ReferencedAttrs() const {
  AttrSet all, reads;
  CollectAttrs(&all, &reads);
  return all;
}

AttrSet Expr::ValueAttrs() const {
  AttrSet all, reads;
  CollectAttrs(&all, &reads);
  return reads;
}

std::string Expr::ToString(const AttrCatalog& catalog) const {
  switch (kind_) {
    case ExprKind::kCompare:
      return StrCat(catalog.Name(attr_), " ", CmpOpName(op_), " ",
                    literal_.ToString());
    case ExprKind::kIn: {
      std::vector<std::string> parts;
      for (const Value& v : values_) parts.push_back(v.ToString());
      return StrCat(catalog.Name(attr_), " IN {", Join(parts, ", "), "}");
    }
    case ExprKind::kExists:
      return StrCat("EXISTS(", catalog.Name(attr_), ")");
    case ExprKind::kAnd:
      return StrCat("(", left_->ToString(catalog), " AND ",
                    right_->ToString(catalog), ")");
    case ExprKind::kOr:
      return StrCat("(", left_->ToString(catalog), " OR ",
                    right_->ToString(catalog), ")");
    case ExprKind::kNot:
      return StrCat("NOT ", left_->ToString(catalog));
    case ExprKind::kConst:
      return TriBoolName(const_value_);
  }
  return "?";
}

}  // namespace flexrel
