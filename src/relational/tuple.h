// Tuples over heterogeneous attribute sets.
//
// Unlike the classical model, a tuple in a flexible relation carries its own
// attribute set attr(t) (Section 2.1): two tuples of one relation may be
// defined on different attributes. Tuple therefore stores a sorted
// (attribute, value) vector rather than positional fields.

#ifndef FLEXREL_RELATIONAL_TUPLE_H_
#define FLEXREL_RELATIONAL_TUPLE_H_

#include <string>
#include <utility>
#include <vector>

#include "relational/attribute.h"
#include "relational/value.h"

namespace flexrel {

/// A mapping from attributes to values; the function attr(t) of the paper is
/// exposed as attrs().
class Tuple {
 public:
  Tuple() = default;

  /// Builds from (attribute, value) pairs; later pairs overwrite earlier ones
  /// on the same attribute.
  static Tuple FromPairs(std::vector<std::pair<AttrId, Value>> pairs);

  /// Sets `attr` to `value` (insert or overwrite).
  void Set(AttrId attr, Value value);

  /// Removes `attr` if present.
  void Erase(AttrId attr);

  /// attr(t): the set of attributes this tuple is defined on.
  AttrSet attrs() const;

  /// True iff the tuple is defined on `attr` (the "type guard" primitive).
  bool Has(AttrId attr) const;

  /// The value at `attr`, or nullptr when absent.
  const Value* Get(AttrId attr) const;

  /// t[X]: the restriction of the tuple to the attributes in `subset`
  /// (attributes the tuple lacks are simply absent from the result).
  Tuple Project(const AttrSet& subset) const;

  /// True iff this tuple and `other` are both defined on all of `x` and
  /// agree on it: the premise of Definitions 4.1 and 4.2.
  bool AgreesOn(const Tuple& other, const AttrSet& x) const;

  /// True iff the tuple is defined on every attribute of `x`.
  bool DefinedOn(const AttrSet& x) const;

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  /// Sorted iteration over (attribute, value) pairs.
  const std::vector<std::pair<AttrId, Value>>& fields() const { return fields_; }

  bool operator==(const Tuple& other) const { return fields_ == other.fields_; }
  bool operator!=(const Tuple& other) const { return fields_ != other.fields_; }
  /// Lexicographic order over the sorted field vectors (deterministic).
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// "<A: 1, B: 'x'>" with attribute names from `catalog`.
  std::string ToString(const AttrCatalog& catalog) const;

 private:
  std::vector<std::pair<AttrId, Value>> fields_;  // sorted by AttrId, unique
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_TUPLE_H_
