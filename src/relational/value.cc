#include "relational/value.h"

#include <cmath>
#include <sstream>

namespace flexrel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = as_bool();
      bool b = other.as_bool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt: {
      int64_t a = as_int();
      int64_t b = other.as_int();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kDouble: {
      double a = as_double();
      double b = other.as_double();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case ValueType::kString:
      return as_string().compare(other.as_string());
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type()) * 0x9E3779B97F4A7C15ull;
  auto mix = [&seed](size_t h) {
    seed ^= h + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
  };
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      mix(std::hash<bool>()(as_bool()));
      break;
    case ValueType::kInt:
      mix(std::hash<int64_t>()(as_int()));
      break;
    case ValueType::kDouble:
      mix(std::hash<double>()(as_double()));
      break;
    case ValueType::kString:
      mix(std::hash<std::string>()(as_string()));
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBool:
      os << (as_bool() ? "true" : "false");
      break;
    case ValueType::kInt:
      os << as_int();
      break;
    case ValueType::kDouble:
      os << as_double();
      break;
    case ValueType::kString:
      os << '\'' << as_string() << '\'';
      break;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace flexrel
