// Classical (homogeneous) relations.
//
// These serve as the baseline substrate: the decomposition translations of
// Section 3.1.1 map a flexible relation onto one or more classical relations
// (null-padded, horizontal or vertical). Every tuple of a classical relation
// is defined on exactly the relation scheme; absent information must be
// encoded as explicit nulls — the very modelling burden flexible relations
// remove.

#ifndef FLEXREL_RELATIONAL_RELATION_H_
#define FLEXREL_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/tuple.h"
#include "util/result.h"

namespace flexrel {

/// A named, homogeneous set of tuples over a fixed scheme.
class Relation {
 public:
  Relation() = default;

  /// Creates an empty relation over `scheme`.
  Relation(std::string name, AttrSet scheme)
      : name_(std::move(name)), scheme_(std::move(scheme)) {}

  const std::string& name() const { return name_; }
  const AttrSet& scheme() const { return scheme_; }

  /// Inserts `t`; fails unless attr(t) equals the scheme exactly (null
  /// values are allowed, absent attributes are not). Duplicates are kept —
  /// set semantics can be requested via Deduplicate().
  Status Insert(Tuple t);

  /// Removes exact duplicates, sorting rows deterministically.
  void Deduplicate();

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Number of null-valued fields across all rows (the storage-overhead
  /// metric of experiment E6).
  size_t CountNulls() const;

  /// Multiset equality up to row order.
  bool EqualsUnordered(const Relation& other) const;

  /// Tabular rendering for diagnostics.
  std::string ToString(const AttrCatalog& catalog) const;

 private:
  std::string name_;
  AttrSet scheme_;
  std::vector<Tuple> rows_;
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_RELATION_H_
