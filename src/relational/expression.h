// Predicate expressions over (possibly heterogeneous) tuples.
//
// Because tuples of a flexible relation need not be defined on the attributes
// a formula mentions, evaluation uses Kleene three-valued logic: accessing an
// absent attribute yields Unknown, And/Or/Not propagate it, and a selection
// keeps a tuple only when the formula evaluates to True. The explicit
// existence test Exists(A) is the paper's *type guard* (Section 3.1.2): it is
// the only construct that turns absence into a definite answer, and the
// optimizer's job (Example 4) is to prove such guards redundant.

#ifndef FLEXREL_RELATIONAL_EXPRESSION_H_
#define FLEXREL_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/tuple.h"

namespace flexrel {

/// Kleene truth value.
enum class TriBool : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

TriBool TriAnd(TriBool a, TriBool b);
TriBool TriOr(TriBool a, TriBool b);
TriBool TriNot(TriBool a);
const char* TriBoolName(TriBool t);

/// Comparison operators.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node kinds, exposed so optimizer passes can pattern-match without RTTI.
enum class ExprKind : uint8_t {
  kCompare,   // attr <op> constant
  kIn,        // attr IN {v1, ..., vk}
  kExists,    // type guard: attribute present?
  kAnd,
  kOr,
  kNot,
  kConst,     // literal TriBool
};

/// Immutable predicate tree. Build with the factory functions below.
class Expr {
 public:
  /// attr <op> literal.
  static ExprPtr Compare(AttrId attr, CmpOp op, Value literal);
  /// attr = literal (the workhorse of determinant constraints).
  static ExprPtr Eq(AttrId attr, Value literal);
  /// attr IN values.
  static ExprPtr In(AttrId attr, std::vector<Value> values);
  /// Type guard: tuple defined on attr.
  static ExprPtr Exists(AttrId attr);
  static ExprPtr And(ExprPtr a, ExprPtr b);
  static ExprPtr Or(ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr a);
  /// Constant truth value (used by rewrites that eliminate subtrees).
  static ExprPtr Const(TriBool value);
  /// Conjunction of a list (True when empty).
  static ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

  /// Evaluates against `t` under Kleene semantics. Comparing an absent
  /// attribute yields Unknown; Exists never does.
  TriBool Eval(const Tuple& t) const;

  /// True iff Eval(t) == kTrue (selection acceptance).
  bool Accepts(const Tuple& t) const { return Eval(t) == TriBool::kTrue; }

  ExprKind kind() const { return kind_; }

  // Introspection (valid for the kinds noted).
  AttrId attr() const { return attr_; }                    // Compare/In/Exists
  CmpOp op() const { return op_; }                         // Compare
  const Value& literal() const { return literal_; }        // Compare
  const std::vector<Value>& values() const { return values_; }  // In
  const ExprPtr& left() const { return left_; }            // And/Or/Not
  const ExprPtr& right() const { return right_; }          // And/Or
  TriBool const_value() const { return const_value_; }     // Const

  /// All attributes the expression mentions.
  AttrSet ReferencedAttrs() const;

  /// All attributes whose values the expression *reads* (everything except
  /// pure Exists guards); these need guarding before access.
  AttrSet ValueAttrs() const;

  /// Renders the formula, e.g. "(salary > 5000 AND jobtype = 'secretary')".
  std::string ToString(const AttrCatalog& catalog) const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  AttrId attr_ = 0;
  CmpOp op_ = CmpOp::kEq;
  Value literal_;
  std::vector<Value> values_;
  ExprPtr left_, right_;
  TriBool const_value_ = TriBool::kTrue;

  void CollectAttrs(AttrSet* all, AttrSet* value_reads) const;
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_EXPRESSION_H_
