#include "relational/attribute.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace flexrel {

AttrId AttrCatalog::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<AttrId> AttrCatalog::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(StrCat("attribute '", name, "' not in catalog"));
  }
  return it->second;
}

const std::string& AttrCatalog::Name(AttrId id) const {
  assert(id < names_.size());
  if (id >= names_.size()) {
    // Rendering paths must not crash in release builds on a foreign id.
    static const std::string* unknown = new std::string("<unknown-attr>");
    return *unknown;
  }
  return names_[id];
}

AttrSet::AttrSet(std::initializer_list<AttrId> ids) : ids_(ids) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

AttrSet AttrSet::FromIds(std::vector<AttrId> ids) {
  AttrSet s;
  s.ids_ = std::move(ids);
  std::sort(s.ids_.begin(), s.ids_.end());
  s.ids_.erase(std::unique(s.ids_.begin(), s.ids_.end()), s.ids_.end());
  return s;
}

bool AttrSet::Contains(AttrId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

bool AttrSet::Intersects(const AttrSet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet out;
  out.ids_.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  AttrSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

AttrSet AttrSet::Minus(const AttrSet& other) const {
  AttrSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

void AttrSet::Insert(AttrId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

size_t AttrSet::Hash() const {
  size_t seed = 0xC0FFEE;
  for (AttrId id : ids_) {
    seed ^= std::hash<AttrId>()(id) + 0x9E3779B97F4A7C15ull + (seed << 6) +
            (seed >> 2);
  }
  return seed;
}

std::string AttrSet::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> names;
  names.reserve(ids_.size());
  for (AttrId id : ids_) names.push_back(catalog.Name(id));
  return "{" + Join(names, ", ") + "}";
}

std::string AttrSet::ToString() const { return "{" + Join(ids_, ", ") + "}"; }

}  // namespace flexrel
