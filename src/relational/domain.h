// Attribute domains.
//
// Domains matter twice in the paper: EAD variant conditions are subsets
// V_i ⊆ Tup(X) of determinant values (Definition 2.1), and AD-induced
// subtypes restrict the determinant's domain to V_i (Section 3.2). We model
// a domain as a value type plus an optional finite restriction (enumerated
// values or an integer interval) so that totality checks (⋃ V_i = Tup(X),
// Section 3.1) and subtype domain restriction are computable.

#ifndef FLEXREL_RELATIONAL_DOMAIN_H_
#define FLEXREL_RELATIONAL_DOMAIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/result.h"
#include "util/rng.h"

namespace flexrel {

/// Describes the set of legal values for an attribute.
class Domain {
 public:
  /// Unrestricted domain of the given atomic type (conceptually infinite for
  /// int/double/string; bool is finite with cardinality 2).
  static Domain Any(ValueType type);

  /// Finite domain enumerating exactly `values` (deduplicated, sorted).
  /// All values must share one type; fails otherwise.
  static Result<Domain> Enumerated(std::vector<Value> values);

  /// Integer interval [lo, hi], inclusive. Requires lo <= hi.
  static Result<Domain> IntRange(int64_t lo, int64_t hi);

  /// The atomic type of the domain's values.
  ValueType type() const { return type_; }

  /// True iff `v` belongs to the domain. Null belongs to no domain.
  bool Contains(const Value& v) const;

  /// Number of values when finite, nullopt when (conceptually) infinite.
  std::optional<uint64_t> Cardinality() const;

  /// The enumerated values; only valid when this is an enumerated domain.
  const std::vector<Value>& values() const { return values_; }
  bool is_enumerated() const { return kind_ == Kind::kEnumerated; }
  bool is_range() const { return kind_ == Kind::kIntRange; }
  int64_t range_lo() const { return lo_; }
  int64_t range_hi() const { return hi_; }

  /// Restriction to the values in `keep` (for building subtype domains).
  /// Every kept value must already belong to this domain.
  Result<Domain> RestrictTo(const std::vector<Value>& keep) const;

  /// True iff every value of this domain is a value of `other`.
  /// (Infinite domains are only subdomains of equal-typed infinite domains.)
  bool IsSubdomainOf(const Domain& other) const;

  /// Draws a uniform value; for infinite domains draws from a bounded
  /// synthetic subrange so that generated workloads stay well-distributed.
  Value Sample(Rng* rng) const;

  /// Diagnostic rendering: "int", "int[1..10]", "{'a','b'}".
  std::string ToString() const;

  bool operator==(const Domain& other) const;

 private:
  enum class Kind { kAny, kEnumerated, kIntRange };
  Domain(Kind kind, ValueType type) : kind_(kind), type_(type) {}

  Kind kind_ = Kind::kAny;
  ValueType type_ = ValueType::kInt;
  std::vector<Value> values_;  // kEnumerated: sorted unique
  int64_t lo_ = 0, hi_ = 0;    // kIntRange
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_DOMAIN_H_
