#include "relational/tuple.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

Tuple Tuple::FromPairs(std::vector<std::pair<AttrId, Value>> pairs) {
  Tuple t;
  for (auto& [attr, value] : pairs) t.Set(attr, std::move(value));
  return t;
}

void Tuple::Set(AttrId attr, Value value) {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), attr,
      [](const auto& field, AttrId a) { return field.first < a; });
  if (it != fields_.end() && it->first == attr) {
    it->second = std::move(value);
  } else {
    fields_.insert(it, {attr, std::move(value)});
  }
}

void Tuple::Erase(AttrId attr) {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), attr,
      [](const auto& field, AttrId a) { return field.first < a; });
  if (it != fields_.end() && it->first == attr) fields_.erase(it);
}

AttrSet Tuple::attrs() const {
  std::vector<AttrId> ids;
  ids.reserve(fields_.size());
  for (const auto& [attr, value] : fields_) ids.push_back(attr);
  return AttrSet::FromIds(std::move(ids));
}

bool Tuple::Has(AttrId attr) const { return Get(attr) != nullptr; }

const Value* Tuple::Get(AttrId attr) const {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), attr,
      [](const auto& field, AttrId a) { return field.first < a; });
  if (it != fields_.end() && it->first == attr) return &it->second;
  return nullptr;
}

Tuple Tuple::Project(const AttrSet& subset) const {
  Tuple out;
  for (const auto& [attr, value] : fields_) {
    if (subset.Contains(attr)) out.fields_.push_back({attr, value});
  }
  return out;
}

bool Tuple::AgreesOn(const Tuple& other, const AttrSet& x) const {
  for (AttrId attr : x) {
    const Value* a = Get(attr);
    const Value* b = other.Get(attr);
    if (a == nullptr || b == nullptr || *a != *b) return false;
  }
  return true;
}

bool Tuple::DefinedOn(const AttrSet& x) const {
  for (AttrId attr : x) {
    if (!Has(attr)) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  return std::lexicographical_compare(
      fields_.begin(), fields_.end(), other.fields_.begin(),
      other.fields_.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first < b.first;
        return a.second < b.second;
      });
}

size_t Tuple::Hash() const {
  size_t seed = 0xBADC0DE;
  for (const auto& [attr, value] : fields_) {
    seed ^= std::hash<AttrId>()(attr) + 0x9E3779B97F4A7C15ull + (seed << 6) +
            (seed >> 2);
    seed ^= value.Hash() + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string Tuple::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& [attr, value] : fields_) {
    parts.push_back(StrCat(catalog.Name(attr), ": ", value.ToString()));
  }
  return "<" + Join(parts, ", ") + ">";
}

}  // namespace flexrel
