// Attribute identities and attribute sets.
//
// The paper ranges over a universe of attributes 𝔘; attribute sets X, Y, Z
// are the currency of schemes and dependencies. We intern attribute names in
// an AttrCatalog and represent sets as sorted unique id vectors, which keeps
// set algebra (union, intersection, difference, subset tests — the workhorses
// of the closure algorithms in Section 4) cache-friendly and deterministic.

#ifndef FLEXREL_RELATIONAL_ATTRIBUTE_H_
#define FLEXREL_RELATIONAL_ATTRIBUTE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace flexrel {

/// Dense identifier of an interned attribute name.
using AttrId = uint32_t;

/// Bidirectional attribute-name registry (the universe 𝔘).
///
/// Attribute ids are dense and allocation order is the id order, so tests
/// that intern attributes in a fixed order get stable ids.
class AttrCatalog {
 public:
  /// Interns `name`, returning the existing id when already present.
  AttrId Intern(const std::string& name);

  /// Looks up an already interned name.
  Result<AttrId> Find(const std::string& name) const;

  /// The name of `id`; `id` must have been produced by this catalog.
  const std::string& Name(AttrId id) const;

  /// Number of interned attributes.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> index_;
};

/// Immutable-ish sorted set of attribute ids with value semantics.
class AttrSet {
 public:
  AttrSet() = default;

  /// Builds from arbitrary ids (deduplicated, sorted).
  AttrSet(std::initializer_list<AttrId> ids);
  static AttrSet FromIds(std::vector<AttrId> ids);

  /// Singleton set.
  static AttrSet Of(AttrId id) { return AttrSet({id}); }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }

  bool Contains(AttrId id) const;
  bool IsSubsetOf(const AttrSet& other) const;
  bool Intersects(const AttrSet& other) const;

  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Minus(const AttrSet& other) const;

  /// Adds one id (no-op if present).
  void Insert(AttrId id);

  /// Sorted iteration.
  std::vector<AttrId>::const_iterator begin() const { return ids_.begin(); }
  std::vector<AttrId>::const_iterator end() const { return ids_.end(); }
  const std::vector<AttrId>& ids() const { return ids_; }

  bool operator==(const AttrSet& other) const { return ids_ == other.ids_; }
  bool operator!=(const AttrSet& other) const { return ids_ != other.ids_; }
  /// Lexicographic order, for use as ordered-map keys.
  bool operator<(const AttrSet& other) const { return ids_ < other.ids_; }

  size_t Hash() const;

  /// "{A, B, C}" using names from `catalog`.
  std::string ToString(const AttrCatalog& catalog) const;
  /// "{0, 1, 2}" raw ids, when no catalog is at hand.
  std::string ToString() const;

 private:
  std::vector<AttrId> ids_;  // sorted, unique
};

/// Hash functor for unordered containers keyed by AttrSet.
struct AttrSetHash {
  size_t operator()(const AttrSet& s) const { return s.Hash(); }
};

}  // namespace flexrel

#endif  // FLEXREL_RELATIONAL_ATTRIBUTE_H_
