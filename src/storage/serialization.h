// Text serialization of flexible relations.
//
// A line-oriented, versioned format covering everything a base relation
// needs to round-trip: the attribute catalog slice it uses, the flexible
// scheme (in the paper's own notation, reparsed on load), domains, EADs,
// declared dependencies beyond the EAD-derived ones (an installed,
// discovery-mined Σ survives the trip) and the heterogeneous instance.
// Strings are %-escaped so arbitrary values survive; loading re-validates
// every tuple through the TypeChecker, so a corrupted or hand-edited file
// cannot smuggle ill-typed data in, and then audits the declared Σ against
// the loaded instance through the partition engine's DependencyValidator —
// a corrupt Σ (dependencies the instance does not satisfy) fails the load
// with kConstraintViolation instead of poisoning downstream optimizers.

#ifndef FLEXREL_STORAGE_SERIALIZATION_H_
#define FLEXREL_STORAGE_SERIALIZATION_H_

#include <string>

#include "core/flexible_relation.h"

namespace flexrel {

/// A self-contained, loadable database: one base relation with its catalog.
struct FlexDb {
  AttrCatalog catalog;
  FlexibleScheme scheme;
  std::vector<ExplicitAD> eads;
  std::vector<std::pair<AttrId, Domain>> domains;
  FlexibleRelation relation;
};

/// Serializes `db` (catalog slice, scheme, domains, EADs, instance).
/// The catalog passed alongside supplies attribute names.
std::string WriteFlexDb(const AttrCatalog& catalog,
                        const FlexibleScheme& scheme,
                        const std::vector<ExplicitAD>& eads,
                        const std::vector<std::pair<AttrId, Domain>>& domains,
                        const FlexibleRelation& relation);

/// Parses a serialized database. Attribute ids are re-interned (the format
/// stores names, not ids), every tuple is type-checked on insert. Returned
/// by unique_ptr so the embedded catalog never moves under the checker.
Result<std::unique_ptr<FlexDb>> ReadFlexDb(const std::string& text);

/// Value <-> token encoding used by the format ("i:42", "r:1.5", "b:1",
/// "s:hello%20world", "n:"), exposed for tests and tooling.
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(const std::string& token);

/// %-escaping for names and string payloads (escapes %, whitespace, '|').
std::string EscapeText(const std::string& text);
Result<std::string> UnescapeText(const std::string& text);

}  // namespace flexrel

#endif  // FLEXREL_STORAGE_SERIALIZATION_H_
