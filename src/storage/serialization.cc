#include "storage/serialization.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace flexrel {

std::string EscapeText(const std::string& text) {
  std::string out;
  for (unsigned char c : text) {
    if (c == '%' || c == '|' || c == ',' || c == '=' || c <= ' ' ||
        c == 0x7f) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

Result<std::string> UnescapeText(const std::string& text) {
  std::string out;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument("truncated escape sequence");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(text[i + 1]);
    int lo = hex(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad escape sequence");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "n:";
    case ValueType::kBool:
      return v.as_bool() ? "b:1" : "b:0";
    case ValueType::kInt:
      return StrCat("i:", v.as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "r:%.17g", v.as_double());
      return buf;
    }
    case ValueType::kString:
      return StrCat("s:", EscapeText(v.as_string()));
  }
  return "n:";
}

Result<Value> DecodeValue(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::InvalidArgument(StrCat("bad value token '", token, "'"));
  }
  std::string payload = token.substr(2);
  switch (token[0]) {
    case 'n':
      return Value::Null();
    case 'b':
      return Value::Bool(payload == "1");
    case 'i':
      try {
        return Value::Int(std::stoll(payload));
      } catch (...) {
        return Status::InvalidArgument(StrCat("bad int '", payload, "'"));
      }
    case 'r':
      try {
        return Value::Real(std::stod(payload));
      } catch (...) {
        return Status::InvalidArgument(StrCat("bad real '", payload, "'"));
      }
    case 's': {
      FLEXREL_ASSIGN_OR_RETURN(std::string text, UnescapeText(payload));
      return Value::Str(std::move(text));
    }
    default:
      return Status::InvalidArgument(
          StrCat("unknown value tag '", token[0], "'"));
  }
}

namespace {


// Parses a non-negative count, rejecting garbage instead of throwing.
Result<size_t> ParseCount(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty count");
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrCat("bad count '", text, "'"));
    }
    value = value * 10 + static_cast<size_t>(c - '0');
    if (value > (1u << 28)) {
      return Status::InvalidArgument("count too large");
    }
  }
  return value;
}

std::string EncodeAttrSet(const AttrCatalog& catalog, const AttrSet& attrs) {
  std::vector<std::string> names;
  for (AttrId a : attrs) names.push_back(EscapeText(catalog.Name(a)));
  return Join(names, ",");
}

Result<AttrSet> DecodeAttrSet(AttrCatalog* catalog, const std::string& text) {
  AttrSet out;
  if (text.empty()) return out;
  for (const std::string& part : Split(text, ',')) {
    FLEXREL_ASSIGN_OR_RETURN(std::string name, UnescapeText(part));
    out.Insert(catalog->Intern(name));
  }
  return out;
}

std::string EncodeTuple(const AttrCatalog& catalog, const Tuple& t) {
  std::vector<std::string> parts;
  for (const auto& [attr, value] : t.fields()) {
    parts.push_back(
        StrCat(EscapeText(catalog.Name(attr)), "=", EncodeValue(value)));
  }
  return Join(parts, "|");
}

Result<Tuple> DecodeTuple(AttrCatalog* catalog, const std::string& text) {
  Tuple out;
  if (text.empty()) return out;
  for (const std::string& part : Split(text, '|')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StrCat("bad field '", part, "'"));
    }
    FLEXREL_ASSIGN_OR_RETURN(std::string name,
                             UnescapeText(part.substr(0, eq)));
    FLEXREL_ASSIGN_OR_RETURN(Value value, DecodeValue(part.substr(eq + 1)));
    out.Set(catalog->Intern(name), std::move(value));
  }
  return out;
}

std::string EncodeDomain(const Domain& d) {
  if (d.is_enumerated()) {
    std::vector<std::string> vals;
    for (const Value& v : d.values()) vals.push_back(EncodeValue(v));
    return StrCat("enum ", Join(vals, "|"));
  }
  if (d.is_range()) {
    return StrCat("range ", d.range_lo(), " ", d.range_hi());
  }
  return StrCat("any ", ValueTypeName(d.type()));
}

Result<Domain> DecodeDomain(const std::string& text) {
  if (StartsWith(text, "enum ")) {
    std::vector<Value> values;
    for (const std::string& token : Split(text.substr(5), '|')) {
      FLEXREL_ASSIGN_OR_RETURN(Value v, DecodeValue(token));
      values.push_back(std::move(v));
    }
    return Domain::Enumerated(std::move(values));
  }
  if (StartsWith(text, "range ")) {
    std::istringstream is(text.substr(6));
    int64_t lo, hi;
    if (!(is >> lo >> hi)) {
      return Status::InvalidArgument("bad range domain");
    }
    return Domain::IntRange(lo, hi);
  }
  if (StartsWith(text, "any ")) {
    std::string name = text.substr(4);
    for (ValueType t : {ValueType::kBool, ValueType::kInt, ValueType::kDouble,
                        ValueType::kString}) {
      if (name == ValueTypeName(t)) return Domain::Any(t);
    }
  }
  return Status::InvalidArgument(StrCat("bad domain '", text, "'"));
}

}  // namespace

std::string WriteFlexDb(const AttrCatalog& catalog,
                        const FlexibleScheme& scheme,
                        const std::vector<ExplicitAD>& eads,
                        const std::vector<std::pair<AttrId, Domain>>& domains,
                        const FlexibleRelation& relation) {
  // Version 2 adds the optional extra-Σ section below; files without one
  // keep the version-1 stamp (and stay byte-identical to what version-1
  // writers produced), so old readers only reject files they genuinely
  // cannot parse — with a clear version error instead of a puzzling
  // "expected 'rows '" failure.
  std::vector<std::string> extra_deps;
  for (const FuncDep& fd : relation.deps().fds()) {
    extra_deps.push_back(StrCat("dep fd|", EncodeAttrSet(catalog, fd.lhs),
                                "|", EncodeAttrSet(catalog, fd.rhs)));
  }
  std::vector<std::pair<AttrSet, AttrSet>> ead_abbrevs;
  ead_abbrevs.reserve(eads.size());
  for (const ExplicitAD& ead : eads) {
    auto abbrev = ead.Abbreviate();
    ead_abbrevs.emplace_back(abbrev.lhs, abbrev.rhs);
  }
  for (const AttrDep& ad : relation.deps().ads()) {
    bool from_ead = false;
    for (const auto& [lhs, rhs] : ead_abbrevs) {
      if (lhs == ad.lhs && rhs == ad.rhs) {
        from_ead = true;
        break;
      }
    }
    if (!from_ead) {
      extra_deps.push_back(StrCat("dep ad|", EncodeAttrSet(catalog, ad.lhs),
                                  "|", EncodeAttrSet(catalog, ad.rhs)));
    }
  }

  std::ostringstream os;
  os << (extra_deps.empty() ? "flexdb 1\n" : "flexdb 2\n");
  os << "name " << EscapeText(relation.name()) << "\n";
  os << "scheme " << scheme.ToString(catalog) << "\n";
  os << "domains " << domains.size() << "\n";
  for (const auto& [attr, domain] : domains) {
    os << EscapeText(catalog.Name(attr)) << " " << EncodeDomain(domain)
       << "\n";
  }
  os << "eads " << eads.size() << "\n";
  for (const ExplicitAD& ead : eads) {
    os << "ead " << EncodeAttrSet(catalog, ead.determinant()) << " "
       << EncodeAttrSet(catalog, ead.determined()) << " "
       << ead.variants().size() << "\n";
    for (const EadVariant& v : ead.variants()) {
      os << "variant " << EncodeAttrSet(catalog, v.then) << " "
         << v.when.values().size() << "\n";
      for (const Tuple& cond : v.when.values()) {
        os << "when " << EncodeTuple(catalog, cond) << "\n";
      }
    }
  }
  // Declared dependencies beyond the EAD-derived ADs (e.g. an installed,
  // discovery-mined Σ — workload/generator.h InstallDiscoveredDeps). The
  // EAD abbreviations are re-derived on load and not repeated here.
  if (!extra_deps.empty()) {
    os << "deps " << extra_deps.size() << "\n";
    for (const std::string& line : extra_deps) os << line << "\n";
  }
  os << "rows " << relation.size() << "\n";
  for (const Tuple& t : relation.rows()) {
    os << "row " << EncodeTuple(catalog, t) << "\n";
  }
  return os.str();
}

Result<std::unique_ptr<FlexDb>> ReadFlexDb(const std::string& text) {
  auto db = std::make_unique<FlexDb>();
  std::istringstream is(text);
  std::string line;

  auto next_line = [&](const std::string& expected_prefix) -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument(
          StrCat("unexpected end of input, wanted '", expected_prefix, "'"));
    }
    if (!StartsWith(line, expected_prefix)) {
      return Status::InvalidArgument(
          StrCat("expected '", expected_prefix, "', got '", line, "'"));
    }
    return line.substr(expected_prefix.size());
  };

  FLEXREL_ASSIGN_OR_RETURN(std::string version, next_line("flexdb "));
  // Version 2 = version 1 plus the optional extra-Σ section; the reader is
  // lenient and accepts the section under either stamp.
  if (version != "1" && version != "2") {
    return Status::InvalidArgument(StrCat("unsupported version ", version));
  }
  FLEXREL_ASSIGN_OR_RETURN(std::string escaped_name, next_line("name "));
  FLEXREL_ASSIGN_OR_RETURN(std::string name, UnescapeText(escaped_name));

  FLEXREL_ASSIGN_OR_RETURN(std::string scheme_text, next_line("scheme "));
  FLEXREL_ASSIGN_OR_RETURN(db->scheme,
                           FlexibleScheme::Parse(&db->catalog, scheme_text));

  FLEXREL_ASSIGN_OR_RETURN(std::string domain_count_text,
                           next_line("domains "));
  FLEXREL_ASSIGN_OR_RETURN(size_t domain_count, ParseCount(domain_count_text));
  for (size_t i = 0; i < domain_count; ++i) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated domains section");
    }
    size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      return Status::InvalidArgument(StrCat("bad domain line '", line, "'"));
    }
    FLEXREL_ASSIGN_OR_RETURN(std::string attr_name,
                             UnescapeText(line.substr(0, sp)));
    FLEXREL_ASSIGN_OR_RETURN(Domain domain, DecodeDomain(line.substr(sp + 1)));
    db->domains.push_back({db->catalog.Intern(attr_name), std::move(domain)});
  }

  FLEXREL_ASSIGN_OR_RETURN(std::string ead_count_text, next_line("eads "));
  FLEXREL_ASSIGN_OR_RETURN(size_t ead_count, ParseCount(ead_count_text));
  for (size_t e = 0; e < ead_count; ++e) {
    FLEXREL_ASSIGN_OR_RETURN(std::string header, next_line("ead "));
    std::vector<std::string> parts = Split(header, ' ');
    if (parts.size() != 3) {
      return Status::InvalidArgument(StrCat("bad ead header '", header, "'"));
    }
    FLEXREL_ASSIGN_OR_RETURN(AttrSet determinant,
                             DecodeAttrSet(&db->catalog, parts[0]));
    FLEXREL_ASSIGN_OR_RETURN(AttrSet determined,
                             DecodeAttrSet(&db->catalog, parts[1]));
    FLEXREL_ASSIGN_OR_RETURN(size_t variant_count, ParseCount(parts[2]));
    std::vector<EadVariant> variants;
    for (size_t v = 0; v < variant_count; ++v) {
      FLEXREL_ASSIGN_OR_RETURN(std::string vheader, next_line("variant "));
      std::vector<std::string> vparts = Split(vheader, ' ');
      if (vparts.size() != 2) {
        return Status::InvalidArgument("bad variant header");
      }
      FLEXREL_ASSIGN_OR_RETURN(AttrSet then,
                               DecodeAttrSet(&db->catalog, vparts[0]));
      FLEXREL_ASSIGN_OR_RETURN(size_t cond_count, ParseCount(vparts[1]));
      std::vector<Tuple> conds;
      for (size_t c = 0; c < cond_count; ++c) {
        FLEXREL_ASSIGN_OR_RETURN(std::string cond_text, next_line("when "));
        FLEXREL_ASSIGN_OR_RETURN(Tuple cond,
                                 DecodeTuple(&db->catalog, cond_text));
        conds.push_back(std::move(cond));
      }
      FLEXREL_ASSIGN_OR_RETURN(ConditionSet when,
                               ConditionSet::Make(determinant,
                                                  std::move(conds)));
      variants.push_back(EadVariant{std::move(when), std::move(then)});
    }
    FLEXREL_ASSIGN_OR_RETURN(
        ExplicitAD ead,
        ExplicitAD::Make(determinant, determined, std::move(variants)));
    db->eads.push_back(std::move(ead));
  }

  db->relation = FlexibleRelation::Base(name, &db->catalog, db->scheme,
                                        db->eads, db->domains);

  // Optional extra-Σ section (absent in files written before it existed).
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("unexpected end of input, wanted 'rows '");
  }
  if (StartsWith(line, "deps ")) {
    FLEXREL_ASSIGN_OR_RETURN(size_t dep_count, ParseCount(line.substr(5)));
    for (size_t d = 0; d < dep_count; ++d) {
      // Contextual truncation error: a short Σ section names how far the
      // reader got, so a chopped file is diagnosable at a glance.
      Result<std::string> dep_line = next_line("dep ");
      if (!dep_line.ok()) {
        return dep_line.status().WithContext(
            StrCat("truncated deps section: dependency ", d + 1, " of ",
                   dep_count));
      }
      std::string dep_text = std::move(dep_line).value();
      std::vector<std::string> parts = Split(dep_text, '|');
      if (parts.size() != 3) {
        return Status::InvalidArgument(
            StrCat("bad dependency line 'dep ", dep_text, "'"));
      }
      FLEXREL_ASSIGN_OR_RETURN(AttrSet lhs,
                               DecodeAttrSet(&db->catalog, parts[1]));
      FLEXREL_ASSIGN_OR_RETURN(AttrSet rhs,
                               DecodeAttrSet(&db->catalog, parts[2]));
      if (parts[0] == "fd") {
        db->relation.mutable_deps()->AddFd(FuncDep{std::move(lhs),
                                                   std::move(rhs)});
      } else if (parts[0] == "ad") {
        db->relation.mutable_deps()->AddAd(AttrDep{std::move(lhs),
                                                   std::move(rhs)});
      } else {
        return Status::InvalidArgument(
            StrCat("unknown dependency tag '", parts[0], "'"));
      }
    }
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("unexpected end of input, wanted 'rows '");
    }
  }
  if (!StartsWith(line, "rows ")) {
    return Status::InvalidArgument(
        StrCat("expected 'rows ', got '", line, "'"));
  }
  FLEXREL_ASSIGN_OR_RETURN(size_t row_count, ParseCount(line.substr(5)));
  std::vector<Tuple> loaded_rows;
  // The header's count is untrusted input: cap the up-front reserve so a
  // corrupt 'rows N' line cannot force a giant allocation (which would
  // throw past the Status-based error handling). Real row counts above
  // the cap just grow geometrically as lines actually parse.
  constexpr size_t kMaxReserveRows = 1u << 16;
  loaded_rows.reserve(std::min(row_count, kMaxReserveRows));
  for (size_t r = 0; r < row_count; ++r) {
    // As with deps: a file chopped mid-rows reports exactly where it ends
    // relative to the count the header promised.
    Result<std::string> row_line = next_line("row ");
    if (!row_line.ok()) {
      return row_line.status().WithContext(
          StrCat("truncated rows section: row ", r + 1, " of ", row_count));
    }
    FLEXREL_ASSIGN_OR_RETURN(
        Tuple t, DecodeTuple(&db->catalog, std::move(row_line).value()));
    loaded_rows.push_back(std::move(t));
  }
  // The row count is part of the format's integrity contract in both
  // directions: fewer lines than promised errors above, and anything after
  // the promised rows — a stale tail from an interrupted rewrite, a
  // duplicated section — is corruption, not slack to ignore.
  while (std::getline(is, line)) {
    if (!line.empty()) {
      return Status::InvalidArgument(
          StrCat("trailing input after ", row_count, " declared rows: '",
                 line, "'"));
    }
  }
  // Bulk-load through the transactional batch path: the whole delta is
  // type-checked and duplicate-checked (hashed set semantics, not the
  // per-row linear scan) before any row lands, so a bad file leaves the
  // relation empty instead of partially loaded, and the attached cache —
  // should a caller have touched it — sees one buffered batch. The batch
  // error names the offending op index, which here is the row number.
  FLEXREL_RETURN_IF_ERROR(
      db->relation.InsertRows(std::move(loaded_rows))
          .WithContext(StrCat("loading ", row_count, " rows")));
  // Engine-backed instance audit (ROADMAP item): the declared Σ — the
  // EAD-derived ADs plus any persisted extra dependencies — must hold over
  // the loaded instance. Per-tuple type checks on insert cannot see
  // cross-tuple violations of an installed Σ; the DependencyValidator reads
  // them off cached partitions instead of re-hashing the instance once per
  // dependency.
  if (!db->relation.AuditDeclaredDeps()) {
    return Status::ConstraintViolation(
        StrCat("loaded instance of '", db->relation.name(),
               "' violates its declared dependencies (corrupt sigma?)"));
  }
  return db;
}

}  // namespace flexrel
