#include "core/type_check.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

TypeChecker::TypeChecker(const AttrCatalog* catalog, FlexibleScheme scheme,
                         std::vector<ExplicitAD> eads,
                         std::vector<std::pair<AttrId, Domain>> domains)
    : catalog_(catalog),
      scheme_(std::move(scheme)),
      eads_(std::move(eads)),
      domains_(std::move(domains)) {
  std::sort(domains_.begin(), domains_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const Domain* TypeChecker::DomainFor(AttrId attr) const {
  auto it = std::lower_bound(
      domains_.begin(), domains_.end(), attr,
      [](const auto& entry, AttrId a) { return entry.first < a; });
  if (it != domains_.end() && it->first == attr) return &it->second;
  return nullptr;
}

Status TypeChecker::CheckShape(const Tuple& t) const {
  AttrSet shape = t.attrs();
  if (!scheme_.Admits(shape)) {
    return Status::ConstraintViolation(
        StrCat("attribute combination ", shape.ToString(*catalog_),
               " not admitted by scheme ", scheme_.ToString(*catalog_)));
  }
  return Status::OK();
}

Status TypeChecker::CheckDomains(const Tuple& t) const {
  for (const auto& [attr, value] : t.fields()) {
    const Domain* d = DomainFor(attr);
    if (d == nullptr) continue;
    if (!d->Contains(value)) {
      return Status::ConstraintViolation(
          StrCat("value ", value.ToString(), " of attribute ",
                 catalog_->Name(attr), " outside domain ", d->ToString()));
    }
  }
  return Status::OK();
}

Status TypeChecker::CheckDependencies(const Tuple& t) const {
  for (const ExplicitAD& ead : eads_) {
    FLEXREL_RETURN_IF_ERROR(ead.CheckTuple(t, *catalog_));
  }
  return Status::OK();
}

Status TypeChecker::Check(const Tuple& t) const {
  FLEXREL_RETURN_IF_ERROR(CheckDomains(t));
  FLEXREL_RETURN_IF_ERROR(CheckShape(t));
  FLEXREL_RETURN_IF_ERROR(CheckDependencies(t));
  return Status::OK();
}

TypeChecker::TypeDelta TypeChecker::DeltaFor(const Tuple& t) const {
  TypeDelta delta;
  AttrSet shape = t.attrs();
  for (const ExplicitAD& ead : eads_) {
    AttrSet required = ead.RequiredAttrs(t);
    AttrSet actual = shape.Intersect(ead.determined());
    delta.to_add = delta.to_add.Union(required.Minus(actual));
    delta.to_remove = delta.to_remove.Union(actual.Minus(required));
  }
  return delta;
}

}  // namespace flexrel
