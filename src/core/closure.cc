#include "core/closure.h"

namespace flexrel {

AttrSet FuncClosure(const AttrSet& x, const DependencySet& sigma) {
  AttrSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FuncDep& fd : sigma.fds()) {
      if (fd.lhs.IsSubsetOf(closure) && !fd.rhs.IsSubsetOf(closure)) {
        closure = closure.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

AttrSet AttrClosure(const AttrSet& x, const DependencySet& sigma,
                    AxiomSystem system) {
  // In 𝔄 only reflexivity contributes X itself; in 𝔄* every functionally
  // determined attribute is attr-determined too (AF1), and ADs may fire
  // through the functional closure (AF2).
  AttrSet seed = (system == AxiomSystem::kAdOnly) ? x : FuncClosure(x, sigma);
  AttrSet closure = seed;
  for (const AttrDep& ad : sigma.ads()) {
    if (ad.lhs.IsSubsetOf(seed)) closure = closure.Union(ad.rhs);
  }
  return closure;
}

bool Implies(const DependencySet& sigma, const FuncDep& target) {
  return target.rhs.IsSubsetOf(FuncClosure(target.lhs, sigma));
}

bool Implies(const DependencySet& sigma, const AttrDep& target,
             AxiomSystem system) {
  return target.rhs.IsSubsetOf(AttrClosure(target.lhs, sigma, system));
}

std::vector<AttrDep> ImpliedSingletonAds(const AttrSet& universe,
                                         const DependencySet& sigma,
                                         AxiomSystem system) {
  // Enumerate LHS subsets of the attributes that matter: the mentioned
  // dependency attributes (augmented LHSs beyond those never unlock more).
  // For each subset X of `universe` we would need 2^|universe| work; instead
  // observe that X+attr is monotone in X ∩ mentioned-LHS attributes, so we
  // enumerate subsets of the union of dependency LHS attributes and report
  // the canonical generators. Callers wanting other LHSs can query Implies().
  std::vector<AttrDep> out;
  AttrSet lhs_pool;
  for (const AttrDep& ad : sigma.ads()) lhs_pool = lhs_pool.Union(ad.lhs);
  if (system == AxiomSystem::kCombined) {
    for (const FuncDep& fd : sigma.fds()) lhs_pool = lhs_pool.Union(fd.lhs);
  }
  lhs_pool = lhs_pool.Intersect(universe);
  std::vector<AttrId> pool(lhs_pool.ids());
  if (pool.size() > 20) return out;  // guard: callers use Implies() instead
  size_t n = pool.size();
  for (size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<AttrId> ids;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) ids.push_back(pool[i]);
    }
    AttrSet x = AttrSet::FromIds(ids);
    AttrSet closure = AttrClosure(x, sigma, system);
    for (AttrId a : closure) {
      if (!x.Contains(a) && universe.Contains(a)) {
        out.push_back(AttrDep{x, AttrSet::Of(a)});
      }
    }
  }
  return out;
}

}  // namespace flexrel
