// A set Σ of functional and attribute dependencies, the object the axiom
// systems of Section 4 reason about.

#ifndef FLEXREL_CORE_DEPENDENCY_SET_H_
#define FLEXREL_CORE_DEPENDENCY_SET_H_

#include <string>
#include <vector>

#include "core/dependency.h"

namespace flexrel {

/// Σ: the declared dependencies of a flexible relation. Value type.
class DependencySet {
 public:
  DependencySet() = default;

  void AddFd(FuncDep fd) { fds_.push_back(std::move(fd)); }
  void AddAd(AttrDep ad) { ads_.push_back(std::move(ad)); }

  const std::vector<FuncDep>& fds() const { return fds_; }
  const std::vector<AttrDep>& ads() const { return ads_; }

  bool empty() const { return fds_.empty() && ads_.empty(); }
  size_t size() const { return fds_.size() + ads_.size(); }

  /// All attributes mentioned by any dependency.
  AttrSet MentionedAttrs() const;

  /// True iff the instance satisfies every dependency (Definitions 4.1/4.2).
  bool SatisfiedBy(const std::vector<Tuple>& rows) const;

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  std::vector<FuncDep> fds_;
  std::vector<AttrDep> ads_;
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_DEPENDENCY_SET_H_
