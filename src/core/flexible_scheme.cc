#include "core/flexible_scheme.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <functional>

#include "util/string_util.h"

namespace flexrel {

namespace {

constexpr uint64_t kSatCap = (1ull << 63) - 1;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return (a > kSatCap - b) ? kSatCap : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSatCap / b) return kSatCap;
  return a * b;
}

}  // namespace

FlexibleScheme FlexibleScheme::Attr(AttrId attr) {
  FlexibleScheme s;
  s.is_leaf_ = true;
  s.attr_ = attr;
  s.attrs_ = AttrSet::Of(attr);
  return s;
}

Result<FlexibleScheme> FlexibleScheme::Group(
    uint32_t at_least, uint32_t at_most,
    std::vector<FlexibleScheme> components) {
  if (at_least > at_most) {
    return Status::InvalidArgument(
        StrCat("at-least (", at_least, ") exceeds at-most (", at_most, ")"));
  }
  if (at_most > components.size()) {
    return Status::InvalidArgument(
        StrCat("at-most (", at_most, ") exceeds component count (",
               components.size(), ")"));
  }
  // Attribute occurrences must be unique across the whole tree (otherwise
  // the disjoint decomposition that dnf() relies on breaks down).
  AttrSet all;
  size_t expected = 0;
  for (const FlexibleScheme& c : components) {
    expected += c.attrs().size();
    all = all.Union(c.attrs());
  }
  if (all.size() != expected) {
    return Status::InvalidArgument(
        "duplicate attribute across flexible-scheme components");
  }
  FlexibleScheme s;
  s.is_leaf_ = false;
  s.at_least_ = at_least;
  s.at_most_ = at_most;
  s.components_ = std::move(components);
  s.attrs_ = std::move(all);
  return s;
}

Result<FlexibleScheme> FlexibleScheme::Relational(const AttrSet& attrs) {
  std::vector<FlexibleScheme> comps;
  comps.reserve(attrs.size());
  for (AttrId a : attrs) comps.push_back(Attr(a));
  uint32_t n = static_cast<uint32_t>(comps.size());
  return Group(n, n, std::move(comps));
}

Result<FlexibleScheme> FlexibleScheme::DisjointUnion(
    std::vector<FlexibleScheme> components) {
  if (components.empty()) {
    return Status::InvalidArgument("disjoint union needs >= 1 component");
  }
  return Group(1, 1, std::move(components));
}

Result<FlexibleScheme> FlexibleScheme::NonDisjointUnion(
    std::vector<FlexibleScheme> components) {
  if (components.empty()) {
    return Status::InvalidArgument("non-disjoint union needs >= 1 component");
  }
  uint32_t n = static_cast<uint32_t>(components.size());
  return Group(1, n, std::move(components));
}

Result<FlexibleScheme> FlexibleScheme::Optional(FlexibleScheme component) {
  std::vector<FlexibleScheme> comps;
  comps.push_back(std::move(component));
  return Group(0, 1, std::move(comps));
}

bool FlexibleScheme::Admits(const AttrSet& candidate) const {
  if (!candidate.IsSubsetOf(attrs_)) return false;
  return CanRealize(candidate);
}

bool FlexibleScheme::CanRealize(const AttrSet& s) const {
  if (is_leaf_) {
    return s.size() == 1 && s.Contains(attr_);
  }
  uint32_t nonempty = 0;     // children that must be chosen (m)
  uint32_t empty_filler = 0; // children that may be chosen contributing ∅ (f)
  for (const FlexibleScheme& c : components_) {
    AttrSet part = s.Intersect(c.attrs());
    if (!part.empty()) {
      if (!c.CanRealize(part)) return false;
      ++nonempty;
    } else if (c.CanRealizeEmpty()) {
      ++empty_filler;
    }
  }
  // A chosen-count c with at_least <= c <= at_most and
  // nonempty <= c <= nonempty + empty_filler must exist.
  return nonempty <= at_most_ && at_least_ <= nonempty + empty_filler;
}

bool FlexibleScheme::CanRealizeEmpty() const {
  if (is_leaf_) return false;
  uint32_t empty_filler = 0;
  for (const FlexibleScheme& c : components_) {
    if (c.CanRealizeEmpty()) ++empty_filler;
  }
  return at_least_ <= std::min<uint32_t>(at_most_, empty_filler);
}

FlexibleScheme::Counts FlexibleScheme::CountDistinct() const {
  if (is_leaf_) return {1, false};
  size_t k = components_.size();
  // dp[m][f]: number of distinct per-child contribution vectors with m
  // children contributing a nonempty set and f of the remaining children
  // able to absorb a "chosen but empty" slot.
  std::vector<std::vector<uint64_t>> dp(k + 1,
                                        std::vector<uint64_t>(k + 1, 0));
  dp[0][0] = 1;
  size_t processed = 0;
  for (const FlexibleScheme& c : components_) {
    Counts cc = c.CountDistinct();
    uint64_t ne = cc.total - (cc.empty_realizable ? 1 : 0);
    uint32_t e = cc.empty_realizable ? 1 : 0;
    std::vector<std::vector<uint64_t>> next(
        k + 1, std::vector<uint64_t>(k + 1, 0));
    for (size_t m = 0; m <= processed; ++m) {
      for (size_t f = 0; f <= processed; ++f) {
        uint64_t ways = dp[m][f];
        if (ways == 0) continue;
        // Child contributes the empty set.
        next[m][f + e] = SatAdd(next[m][f + e], ways);
        // Child contributes one of its distinct nonempty sets.
        if (ne > 0) next[m + 1][f] = SatAdd(next[m + 1][f], SatMul(ways, ne));
      }
    }
    dp = std::move(next);
    ++processed;
  }
  uint64_t total = 0;
  for (size_t m = 0; m <= k; ++m) {
    for (size_t f = 0; f <= k; ++f) {
      if (dp[m][f] == 0) continue;
      if (m <= at_most_ && at_least_ <= m + f) {
        total = SatAdd(total, dp[m][f]);
      }
    }
  }
  return {total, CanRealizeEmpty()};
}

uint64_t FlexibleScheme::DnfCount() const {
  Counts c = CountDistinct();
  // The root is always "chosen": its distinct realizable sets are the dnf.
  return c.total;
}

void FlexibleScheme::EnumerateInto(std::vector<AttrSet>* out, size_t limit,
                                   bool* overflow) const {
  if (*overflow) return;
  if (is_leaf_) {
    out->push_back(AttrSet::Of(attr_));
    return;
  }
  // Per-child menus: each child offers ∅ plus its distinct nonempty sets;
  // track whether the ∅ offering can be a *chosen* slot.
  struct Menu {
    std::vector<AttrSet> nonempty;
    bool empty_chosen_ok;
  };
  std::vector<Menu> menus;
  menus.reserve(components_.size());
  for (const FlexibleScheme& c : components_) {
    Menu m;
    std::vector<AttrSet> sets;
    bool ov = false;
    c.EnumerateInto(&sets, limit, &ov);
    if (ov) {
      *overflow = true;
      return;
    }
    for (AttrSet& s : sets) {
      if (s.empty()) continue;
      m.nonempty.push_back(std::move(s));
    }
    m.empty_chosen_ok = c.CanRealizeEmpty();
    menus.push_back(std::move(m));
  }
  // DFS over children accumulating the union plus (m, f) feasibility state.
  std::vector<AttrSet> acc;
  AttrSet current;
  std::function<void(size_t, uint32_t, uint32_t)> dfs =
      [&](size_t i, uint32_t m, uint32_t f) {
        if (*overflow) return;
        if (i == menus.size()) {
          if (m <= at_most_ && at_least_ <= m + f) {
            out->push_back(current);
            if (out->size() > limit) *overflow = true;
          }
          return;
        }
        const Menu& menu = menus[i];
        // Option 1: this child contributes nothing.
        dfs(i + 1, m, f + (menu.empty_chosen_ok ? 1 : 0));
        // Option 2: contributes one of its nonempty sets.
        for (const AttrSet& s : menu.nonempty) {
          AttrSet saved = current;
          current = current.Union(s);
          dfs(i + 1, m + 1, f);
          current = std::move(saved);
          if (*overflow) return;
        }
      };
  dfs(0, 0, 0);
}

Result<std::vector<AttrSet>> FlexibleScheme::Dnf(size_t limit) const {
  uint64_t count = DnfCount();
  if (count > limit) {
    return Status::OutOfRange(
        StrCat("dnf has ", count, " combinations, above the limit of ", limit));
  }
  std::vector<AttrSet> out;
  bool overflow = false;
  EnumerateInto(&out, limit, &overflow);
  if (overflow) {
    return Status::OutOfRange("dnf enumeration exceeded limit");
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FlexibleScheme FlexibleScheme::Project(const AttrSet& keep) const {
  if (is_leaf_) {
    if (keep.Contains(attr_)) return *this;
    // A projected-away leaf still occupies its "chosen" slot but now
    // contributes no attributes: <0,0,{}> realizes exactly ∅.
    FlexibleScheme eps;
    eps.is_leaf_ = false;
    eps.at_least_ = 0;
    eps.at_most_ = 0;
    return eps;
  }
  FlexibleScheme s;
  s.is_leaf_ = false;
  s.at_least_ = at_least_;
  s.at_most_ = at_most_;
  s.components_.reserve(components_.size());
  for (const FlexibleScheme& c : components_) {
    s.components_.push_back(c.Project(keep));
    s.attrs_ = s.attrs_.Union(s.components_.back().attrs());
  }
  return s;
}

Result<FlexibleScheme> FlexibleScheme::Concat(
    const FlexibleScheme& other) const {
  if (attrs().Intersects(other.attrs())) {
    return Status::InvalidArgument(
        "cannot concatenate schemes with overlapping attributes");
  }
  std::vector<FlexibleScheme> comps{*this, other};
  return Group(2, 2, std::move(comps));
}

std::string FlexibleScheme::ToString(const AttrCatalog& catalog) const {
  if (is_leaf_) return catalog.Name(attr_);
  std::vector<std::string> parts;
  parts.reserve(components_.size());
  for (const FlexibleScheme& c : components_) {
    parts.push_back(c.ToString(catalog));
  }
  return StrCat("<", at_least_, ", ", at_most_, ", {", Join(parts, ", "),
                "}>");
}

bool FlexibleScheme::operator==(const FlexibleScheme& other) const {
  if (is_leaf_ != other.is_leaf_) return false;
  if (is_leaf_) return attr_ == other.attr_;
  return at_least_ == other.at_least_ && at_most_ == other.at_most_ &&
         components_ == other.components_;
}

namespace {

// Minimal recursive-descent parser for the paper's scheme notation.
class SchemeParser {
 public:
  SchemeParser(AttrCatalog* catalog, const std::string& text)
      : catalog_(catalog), text_(text) {}

  Result<FlexibleScheme> Parse() {
    FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme s, ParseNode());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing characters at offset ", pos_, " in scheme text"));
    }
    return s;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<uint32_t> ParseNumber() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) {
      return Status::InvalidArgument(
          StrCat("expected number at offset ", start));
    }
    return static_cast<uint32_t>(std::stoul(text_.substr(start, pos_ - start)));
  }

  Result<FlexibleScheme> ParseNode() {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '<') return ParseGroup();
    return ParseLeaf();
  }

  Result<FlexibleScheme> ParseLeaf() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) {
      return Status::InvalidArgument(
          StrCat("expected attribute name at offset ", start));
    }
    return FlexibleScheme::Attr(
        catalog_->Intern(text_.substr(start, pos_ - start)));
  }

  Result<FlexibleScheme> ParseGroup() {
    if (!Consume('<')) return Status::InvalidArgument("expected '<'");
    FLEXREL_ASSIGN_OR_RETURN(uint32_t lo, ParseNumber());
    if (!Consume(',')) return Status::InvalidArgument("expected ',' after at-least");
    FLEXREL_ASSIGN_OR_RETURN(uint32_t hi, ParseNumber());
    if (!Consume(',')) return Status::InvalidArgument("expected ',' after at-most");
    if (!Consume('{')) return Status::InvalidArgument("expected '{'");
    std::vector<FlexibleScheme> comps;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme c, ParseNode());
        comps.push_back(std::move(c));
        if (Consume(',')) continue;
        if (Consume('}')) break;
        return Status::InvalidArgument(
            StrCat("expected ',' or '}' at offset ", pos_));
      }
    }
    if (!Consume('>')) return Status::InvalidArgument("expected '>'");
    return FlexibleScheme::Group(lo, hi, std::move(comps));
  }

  AttrCatalog* catalog_;
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<FlexibleScheme> FlexibleScheme::Parse(AttrCatalog* catalog,
                                             const std::string& text) {
  return SchemeParser(catalog, text).Parse();
}

}  // namespace flexrel
