// Explicit attribute dependencies (Definition 2.1).
//
// An EAD  < X --exp.attr--> Y, { V1 --exp.attr--> Y1, ..., Vn --exp.attr--> Yn } >
// names a determinant attribute set X, a determined set Y, and n variants:
// value sets Vi ⊆ Tup(X) (pairwise disjoint) paired with attribute subsets
// Yi ⊆ Y. A tuple t with t[X] ∈ Vi must satisfy attr(t) ∩ Y = Yi; a tuple
// matching no Vi (including tuples not defined on all of X) must satisfy
// attr(t) ∩ Y = ∅.
//
// Section 4.1 notes that the rules of axiom system 𝔄 "could have been
// defined for explicit attribute dependencies as well" and spells out the
// additivity rule as pairwise condition intersections. Taken literally that
// rule is unsound for the *explicit* semantics: a tuple matching V1 but no
// W_j would be forced by the combined EAD's "otherwise ∅" clause to drop Y1.
// Our Add() therefore emits the full partition — pairwise intersections plus
// the leftover regions Vi \ ∪W_j (keeping Yi) and W_j \ ∪Vi (keeping Z_j) —
// which is sound and agrees with the paper's rule on the abbreviated level.
// A regression test documents the discrepancy.

#ifndef FLEXREL_CORE_EXPLICIT_AD_H_
#define FLEXREL_CORE_EXPLICIT_AD_H_

#include <string>
#include <vector>

#include "relational/attribute.h"
#include "relational/domain.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace flexrel {

/// A finite set of determinant values V ⊆ Tup(X), represented explicitly.
class ConditionSet {
 public:
  ConditionSet() = default;

  /// Builds V over `base` (= X). Every tuple must be defined on exactly
  /// `base`. Values are deduplicated and sorted.
  static Result<ConditionSet> Make(AttrSet base, std::vector<Tuple> values);

  /// Convenience: a single-attribute, single-value condition such as
  /// < jobtype : 'secretary' >.
  static ConditionSet Single(AttrId attr, Value value);

  const AttrSet& base() const { return base_; }
  const std::vector<Tuple>& values() const { return values_; }
  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

  /// True iff t is defined on base() and t[base()] ∈ V.
  bool Matches(const Tuple& t) const;

  /// Membership of an exact determinant-value tuple.
  bool ContainsValue(const Tuple& projected) const;

  /// V ∩ W. Requires equal bases.
  Result<ConditionSet> Intersect(const ConditionSet& other) const;

  /// V \ W. Requires equal bases.
  Result<ConditionSet> Minus(const ConditionSet& other) const;

  /// V ∪ W. Requires equal bases.
  Result<ConditionSet> UnionWith(const ConditionSet& other) const;

  /// True iff V ∩ W = ∅ (equal bases required; fails closed → false).
  bool DisjointFrom(const ConditionSet& other) const;

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  AttrSet base_;
  std::vector<Tuple> values_;  // sorted, unique, each defined on base_
};

/// One variant of an EAD: "when the determinant value lies in `when`, the
/// tuple possesses exactly `then` out of the determined attributes".
struct EadVariant {
  ConditionSet when;
  AttrSet then;
};

/// Explicit attribute dependency (Definition 2.1).
class ExplicitAD {
 public:
  /// Default: the empty EAD (no determinant, no determined attributes, no
  /// variants) — trivially satisfied by every tuple. Placeholder before
  /// assignment.
  ExplicitAD() = default;

  /// Validates and builds an EAD. Requirements:
  ///  - every variant's condition base equals `determinant`,
  ///  - every `then` ⊆ `determined`,
  ///  - condition sets are pairwise disjoint (Definition 2.1's Vi ∩ Vj = ∅).
  static Result<ExplicitAD> Make(AttrSet determinant, AttrSet determined,
                                 std::vector<EadVariant> variants);

  const AttrSet& determinant() const { return determinant_; }
  const AttrSet& determined() const { return determined_; }
  const std::vector<EadVariant>& variants() const { return variants_; }
  /// The attribute set conditions actually range over; a strict subset of
  /// determinant() only after AugmentLhs.
  const AttrSet& condition_base() const { return condition_base_; }

  /// Index of the variant matching `t`, or -1 when none does (which includes
  /// tuples not defined on the determinant).
  int MatchVariant(const Tuple& t) const;

  /// The exact subset of determined() that `t` must carry.
  AttrSet RequiredAttrs(const Tuple& t) const;

  /// Definition 2.1 satisfaction for a single tuple; on violation the status
  /// message names the variant and the offending attribute sets.
  Status CheckTuple(const Tuple& t, const AttrCatalog& catalog) const;

  /// Satisfaction over an instance.
  bool Satisfies(const std::vector<Tuple>& rows) const;

  /// The abbreviated dependency X --attr--> Y (Section 4's Definition 4.1).
  struct AttrDepView {
    AttrSet lhs;
    AttrSet rhs;
  };
  AttrDepView Abbreviate() const { return {determinant_, determined_}; }

  /// Rule A1 (projectivity) at the EAD level: restrict the determined side
  /// to `keep` (variants keep their conditions, Yi becomes Yi ∩ keep).
  ExplicitAD ProjectRhs(const AttrSet& keep) const;

  /// Rule A4 (left augmentation) at the EAD level: the determinant grows to
  /// X ∪ extra; conditions conceptually become Vi × Tup(extra) and are
  /// evaluated by projecting onto the original base.
  ExplicitAD AugmentLhs(const AttrSet& extra) const;

  /// Rule A2 (additivity) at the EAD level, in the sound full-partition form
  /// (see file comment). Requires equal condition bases.
  static Result<ExplicitAD> Add(const ExplicitAD& a, const ExplicitAD& b);

  /// ER classification (Section 3.1): variants are disjoint when the Yi are
  /// pairwise disjoint.
  bool IsDisjointSpecialization() const;

  /// ER classification: the specialization is total when ∪Vi covers all of
  /// Tup(X) under the given per-attribute domains. Fails with kOutOfRange
  /// when Tup(X) is infinite or larger than `enumeration_cap`.
  Result<bool> IsTotalSpecialization(
      const std::vector<std::pair<AttrId, Domain>>& domains,
      uint64_t enumeration_cap = 1u << 20) const;

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  AttrSet determinant_;
  AttrSet condition_base_;
  AttrSet determined_;
  std::vector<EadVariant> variants_;
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_EXPLICIT_AD_H_
