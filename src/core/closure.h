// Attribute closures and implication under the paper's two axiom systems.
//
// System 𝔄 (Section 4.1) for ADs alone:
//   (A1) X --attr--> YZ  ⊢  X --attr--> Y               (projectivity)
//   (A2) {X --attr--> Y, X --attr--> Z} ⊢ X --attr--> YZ (additivity)
//   (A3) ∅ ⊢ X --attr--> Y  if Y ⊆ X                     (reflexivity)
//   (A4) X --attr--> Y  ⊢  XZ --attr--> Y                (left augmentation)
// Transitivity is *invalid* (ADs say nothing about the contents of the
// determined attributes), so the closure needs no fixpoint iteration:
//   X+attr = X ∪ ⋃ { W : (V --attr--> W) ∈ Σ, V ⊆ X }.
//
// System 𝔄* (Section 4.2) for FDs and ADs together adds
//   (AF1) X --func--> Y ⊢ X --attr--> Y                  (subsumption)
//   (AF2) {X --func--> Y, Y --attr--> Z} ⊢ X --attr--> Z (combined trans.)
//   (F1)(F2)(F3) the classical Armstrong rules for FDs.
// FDs close transitively as usual; ADs then fire once through the functional
// closure (no rule ever converts an AD back into an FD):
//   X+attr* = X+func ∪ ⋃ { W : (V --attr--> W) ∈ Σ_AD, V ⊆ X+func }.

#ifndef FLEXREL_CORE_CLOSURE_H_
#define FLEXREL_CORE_CLOSURE_H_

#include "core/dependency_set.h"

namespace flexrel {

/// Which axiom system to reason in.
enum class AxiomSystem {
  /// 𝔄: attribute dependencies only; FDs in Σ are ignored.
  kAdOnly,
  /// 𝔄*: the combined system over FDs and ADs.
  kCombined,
};

/// X+func: the classical FD closure of `x` under Σ's FDs (F1–F3).
AttrSet FuncClosure(const AttrSet& x, const DependencySet& sigma);

/// X+attr: the AD closure of `x` under the chosen axiom system.
AttrSet AttrClosure(const AttrSet& x, const DependencySet& sigma,
                    AxiomSystem system);

/// Σ ⊢ X --func--> Y (always reasons in 𝔄*, the only system with FD rules).
bool Implies(const DependencySet& sigma, const FuncDep& target);

/// Σ ⊢ X --attr--> Y in the chosen axiom system.
bool Implies(const DependencySet& sigma, const AttrDep& target,
             AxiomSystem system);

/// The full set of implied, *non-trivial* ADs with single-attribute RHS over
/// `universe` — a convenience for exhaustive comparisons in tests and for the
/// propagation experiments (kept tractable by the single-attribute RHS: any
/// implied AD is recoverable from these via A2/A1).
std::vector<AttrDep> ImpliedSingletonAds(const AttrSet& universe,
                                         const DependencySet& sigma,
                                         AxiomSystem system);

}  // namespace flexrel

#endif  // FLEXREL_CORE_CLOSURE_H_
