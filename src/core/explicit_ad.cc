#include "core/explicit_ad.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

Result<ConditionSet> ConditionSet::Make(AttrSet base,
                                        std::vector<Tuple> values) {
  for (const Tuple& v : values) {
    if (v.attrs() != base) {
      return Status::InvalidArgument(
          StrCat("condition value over ", v.attrs().ToString(),
                 " does not match condition base ", base.ToString()));
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  ConditionSet c;
  c.base_ = std::move(base);
  c.values_ = std::move(values);
  return c;
}

ConditionSet ConditionSet::Single(AttrId attr, Value value) {
  Tuple t;
  t.Set(attr, std::move(value));
  ConditionSet c;
  c.base_ = AttrSet::Of(attr);
  c.values_.push_back(std::move(t));
  return c;
}

bool ConditionSet::Matches(const Tuple& t) const {
  if (!t.DefinedOn(base_)) return false;
  return ContainsValue(t.Project(base_));
}

bool ConditionSet::ContainsValue(const Tuple& projected) const {
  return std::binary_search(values_.begin(), values_.end(), projected);
}

Result<ConditionSet> ConditionSet::Intersect(const ConditionSet& other) const {
  if (base_ != other.base_) {
    return Status::InvalidArgument("condition bases differ in Intersect");
  }
  ConditionSet out;
  out.base_ = base_;
  std::set_intersection(values_.begin(), values_.end(), other.values_.begin(),
                        other.values_.end(), std::back_inserter(out.values_));
  return out;
}

Result<ConditionSet> ConditionSet::Minus(const ConditionSet& other) const {
  if (base_ != other.base_) {
    return Status::InvalidArgument("condition bases differ in Minus");
  }
  ConditionSet out;
  out.base_ = base_;
  std::set_difference(values_.begin(), values_.end(), other.values_.begin(),
                      other.values_.end(), std::back_inserter(out.values_));
  return out;
}

Result<ConditionSet> ConditionSet::UnionWith(const ConditionSet& other) const {
  if (base_ != other.base_) {
    return Status::InvalidArgument("condition bases differ in UnionWith");
  }
  ConditionSet out;
  out.base_ = base_;
  std::set_union(values_.begin(), values_.end(), other.values_.begin(),
                 other.values_.end(), std::back_inserter(out.values_));
  return out;
}

bool ConditionSet::DisjointFrom(const ConditionSet& other) const {
  if (base_ != other.base_) return false;
  auto a = values_.begin();
  auto b = other.values_.begin();
  while (a != values_.end() && b != other.values_.end()) {
    if (*a == *b) return false;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

std::string ConditionSet::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Tuple& t : values_) parts.push_back(t.ToString(catalog));
  return "{" + Join(parts, ", ") + "}";
}

Result<ExplicitAD> ExplicitAD::Make(AttrSet determinant, AttrSet determined,
                                    std::vector<EadVariant> variants) {
  for (const EadVariant& v : variants) {
    if (v.when.base() != determinant) {
      return Status::InvalidArgument(
          StrCat("variant condition base ", v.when.base().ToString(),
                 " does not match determinant ", determinant.ToString()));
    }
    if (!v.then.IsSubsetOf(determined)) {
      return Status::InvalidArgument(
          StrCat("variant attribute set ", v.then.ToString(),
                 " not contained in determined set ", determined.ToString()));
    }
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    for (size_t j = i + 1; j < variants.size(); ++j) {
      if (!variants[i].when.DisjointFrom(variants[j].when)) {
        return Status::InvalidArgument(
            StrCat("variant conditions ", i, " and ", j,
                   " overlap (Definition 2.1 requires Vi ∩ Vj = ∅)"));
      }
    }
  }
  ExplicitAD ead;
  ead.determinant_ = determinant;
  ead.condition_base_ = determinant;
  ead.determined_ = std::move(determined);
  ead.variants_ = std::move(variants);
  return ead;
}

int ExplicitAD::MatchVariant(const Tuple& t) const {
  if (!t.DefinedOn(determinant_)) return -1;
  for (size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i].when.Matches(t)) return static_cast<int>(i);
  }
  return -1;
}

AttrSet ExplicitAD::RequiredAttrs(const Tuple& t) const {
  int i = MatchVariant(t);
  if (i < 0) return AttrSet();
  return variants_[static_cast<size_t>(i)].then;
}

Status ExplicitAD::CheckTuple(const Tuple& t, const AttrCatalog& catalog) const {
  AttrSet actual = t.attrs().Intersect(determined_);
  int i = MatchVariant(t);
  AttrSet required = (i < 0) ? AttrSet() : variants_[static_cast<size_t>(i)].then;
  if (actual == required) return Status::OK();
  std::string variant_desc =
      (i < 0) ? "no variant matches"
              : StrCat("variant ", i, " ",
                       variants_[static_cast<size_t>(i)].when.ToString(catalog));
  return Status::ConstraintViolation(
      StrCat("EAD on ", determinant_.ToString(catalog), ": ", variant_desc,
             " requires determined attributes ", required.ToString(catalog),
             " but tuple carries ", actual.ToString(catalog)));
}

bool ExplicitAD::Satisfies(const std::vector<Tuple>& rows) const {
  for (const Tuple& t : rows) {
    AttrSet actual = t.attrs().Intersect(determined_);
    if (actual != RequiredAttrs(t)) return false;
  }
  return true;
}

ExplicitAD ExplicitAD::ProjectRhs(const AttrSet& keep) const {
  ExplicitAD out = *this;
  out.determined_ = determined_.Intersect(keep);
  for (EadVariant& v : out.variants_) v.then = v.then.Intersect(keep);
  return out;
}

ExplicitAD ExplicitAD::AugmentLhs(const AttrSet& extra) const {
  ExplicitAD out = *this;
  out.determinant_ = determinant_.Union(extra);
  // condition_base_ stays: Vi × Tup(extra) is evaluated by projection.
  return out;
}

Result<ExplicitAD> ExplicitAD::Add(const ExplicitAD& a, const ExplicitAD& b) {
  if (a.condition_base_ != b.condition_base_ ||
      a.determinant_ != b.determinant_) {
    return Status::InvalidArgument(
        "EAD additivity requires equal determinants");
  }
  ExplicitAD out;
  out.determinant_ = a.determinant_;
  out.condition_base_ = a.condition_base_;
  out.determined_ = a.determined_.Union(b.determined_);

  // Pairwise intersections Vi ∩ Wj --> Yi ∪ Zj (the paper's printed rule).
  for (const EadVariant& va : a.variants_) {
    for (const EadVariant& vb : b.variants_) {
      FLEXREL_ASSIGN_OR_RETURN(ConditionSet both, va.when.Intersect(vb.when));
      if (both.empty()) continue;
      out.variants_.push_back({std::move(both), va.then.Union(vb.then)});
    }
  }
  // Leftovers: Vi \ ∪Wj --> Yi  (the other EAD contributes ∅ there), and
  // symmetrically Wj \ ∪Vi --> Zj. Without these the combined EAD's
  // "otherwise ∅" clause would contradict the inputs (see header comment).
  auto union_of = [](const ExplicitAD& e) -> Result<ConditionSet> {
    ConditionSet acc;
    bool first = true;
    for (const EadVariant& v : e.variants_) {
      if (first) {
        acc = v.when;
        first = false;
      } else {
        FLEXREL_ASSIGN_OR_RETURN(acc, acc.UnionWith(v.when));
      }
    }
    if (first) {
      // No variants at all: empty condition set over the base.
      return ConditionSet::Make(e.condition_base_, {});
    }
    return acc;
  };
  FLEXREL_ASSIGN_OR_RETURN(ConditionSet b_all, union_of(b));
  for (const EadVariant& va : a.variants_) {
    FLEXREL_ASSIGN_OR_RETURN(ConditionSet rest, va.when.Minus(b_all));
    if (!rest.empty() && !va.then.empty()) {
      out.variants_.push_back({std::move(rest), va.then});
    }
  }
  FLEXREL_ASSIGN_OR_RETURN(ConditionSet a_all, union_of(a));
  for (const EadVariant& vb : b.variants_) {
    FLEXREL_ASSIGN_OR_RETURN(ConditionSet rest, vb.when.Minus(a_all));
    if (!rest.empty() && !vb.then.empty()) {
      out.variants_.push_back({std::move(rest), vb.then});
    }
  }
  return out;
}

bool ExplicitAD::IsDisjointSpecialization() const {
  for (size_t i = 0; i < variants_.size(); ++i) {
    for (size_t j = i + 1; j < variants_.size(); ++j) {
      if (variants_[i].then.Intersects(variants_[j].then)) return false;
    }
  }
  return true;
}

Result<bool> ExplicitAD::IsTotalSpecialization(
    const std::vector<std::pair<AttrId, Domain>>& domains,
    uint64_t enumeration_cap) const {
  // Collect the domain of every condition-base attribute.
  std::vector<std::pair<AttrId, const Domain*>> dims;
  for (AttrId attr : condition_base_) {
    const Domain* d = nullptr;
    for (const auto& [a, dom] : domains) {
      if (a == attr) {
        d = &dom;
        break;
      }
    }
    if (d == nullptr) {
      return Status::NotFound(
          StrCat("no domain registered for determinant attribute ", attr));
    }
    if (!d->Cardinality().has_value()) {
      return Status::OutOfRange(
          "totality undecidable over an infinite determinant domain");
    }
    dims.push_back({attr, d});
  }
  uint64_t count = 1;
  for (const auto& [attr, d] : dims) {
    (void)attr;
    uint64_t card = *d->Cardinality();
    if (card == 0) return true;  // empty Tup(X) is trivially covered
    if (count > enumeration_cap / card) {
      return Status::OutOfRange("Tup(X) too large to enumerate for totality");
    }
    count *= card;
  }
  // Enumerate Tup(X) and test coverage by some variant condition.
  std::vector<std::vector<Value>> axes;
  for (const auto& [attr, d] : dims) {
    (void)attr;
    if (d->is_enumerated()) {
      axes.push_back(d->values());
    } else if (d->is_range()) {
      std::vector<Value> vals;
      for (int64_t v = d->range_lo(); v <= d->range_hi(); ++v) {
        vals.push_back(Value::Int(v));
      }
      axes.push_back(std::move(vals));
    } else {
      // ValueType::kBool unrestricted.
      axes.push_back({Value::Bool(false), Value::Bool(true)});
    }
  }
  std::vector<size_t> cursor(axes.size(), 0);
  while (true) {
    Tuple t;
    for (size_t i = 0; i < axes.size(); ++i) {
      t.Set(dims[i].first, axes[i][cursor[i]]);
    }
    bool covered = false;
    for (const EadVariant& v : variants_) {
      if (v.when.ContainsValue(t)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
    // Odometer increment.
    size_t i = 0;
    for (; i < axes.size(); ++i) {
      if (++cursor[i] < axes[i].size()) break;
      cursor[i] = 0;
    }
    if (i == axes.size()) break;
    if (axes.empty()) break;
  }
  return true;
}

std::string ExplicitAD::ToString(const AttrCatalog& catalog) const {
  std::ostringstream os;
  os << "< " << determinant_.ToString(catalog) << " --exp.attr--> "
     << determined_.ToString(catalog) << ", {";
  for (size_t i = 0; i < variants_.size(); ++i) {
    if (i > 0) os << ", ";
    os << variants_[i].when.ToString(catalog) << " --exp.attr--> "
       << variants_[i].then.ToString(catalog);
  }
  os << "} >";
  return os.str();
}

}  // namespace flexrel
