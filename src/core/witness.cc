#include "core/witness.h"

#include "core/dependency.h"

namespace flexrel {

Witness BuildWitness(const AttrSet& universe, const AttrSet& x,
                     const DependencySet& sigma) {
  Witness w;
  w.func_closure = FuncClosure(x, sigma);
  w.attr_closure = AttrClosure(x, sigma, AxiomSystem::kCombined);
  for (AttrId a : universe) {
    w.t1.Set(a, Value::Int(1));
  }
  for (AttrId a : w.attr_closure) {
    w.t2.Set(a, Value::Int(w.func_closure.Contains(a) ? 1 : 0));
  }
  return w;
}

bool WitnessRefutesAd(const AttrSet& universe, const DependencySet& sigma,
                      const AttrDep& target) {
  Witness w = BuildWitness(universe, target.lhs, sigma);
  return !SatisfiesAttrDep(w.rows(), target);
}

bool WitnessRefutesFd(const AttrSet& universe, const DependencySet& sigma,
                      const FuncDep& target) {
  Witness w = BuildWitness(universe, target.lhs, sigma);
  return !SatisfiesFuncDep(w.rows(), target);
}

}  // namespace flexrel
