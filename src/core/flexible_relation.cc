#include "core/flexible_relation.h"

#include <algorithm>
#include <sstream>

#include "engine/pli_cache.h"
#include "engine/validator.h"
#include "util/string_util.h"

namespace flexrel {

// The special members exist to pin down one fact: the partition cache never
// travels with the relation. It holds a pointer to this object's row vector,
// so a copy's or move-target's rows live elsewhere; both start cache-less
// and rebuild lazily.
FlexibleRelation::FlexibleRelation(const FlexibleRelation& other)
    : name_(other.name_),
      checker_(other.checker_),
      deps_(other.deps_),
      rows_(other.rows_),
      pli_options_(other.pli_options_) {}

FlexibleRelation::FlexibleRelation(FlexibleRelation&& other) noexcept
    : name_(std::move(other.name_)),
      checker_(std::move(other.checker_)),
      deps_(std::move(other.deps_)),
      rows_(std::move(other.rows_)),
      pli_options_(other.pli_options_) {
  other.InvalidateCache();
}

FlexibleRelation& FlexibleRelation::operator=(const FlexibleRelation& other) {
  if (this != &other) {
    name_ = other.name_;
    checker_ = other.checker_;
    deps_ = other.deps_;
    rows_ = other.rows_;
    pli_options_ = other.pli_options_;
    InvalidateCache();
  }
  return *this;
}

FlexibleRelation& FlexibleRelation::operator=(
    FlexibleRelation&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    checker_ = std::move(other.checker_);
    deps_ = std::move(other.deps_);
    rows_ = std::move(other.rows_);
    pli_options_ = other.pli_options_;
    InvalidateCache();
    other.InvalidateCache();
  }
  return *this;
}

FlexibleRelation::~FlexibleRelation() = default;

std::shared_ptr<PliCache> FlexibleRelation::pli_cache() const {
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) {
    pli_cache_ = std::make_shared<PliCache>(&rows_, pli_options_);
    has_pli_cache_.store(true, std::memory_order_release);
  }
  return pli_cache_;
}

void FlexibleRelation::SetPliCacheOptions(const PliCacheOptions& options) {
  InvalidateCache();
  pli_options_ = options;
}

void FlexibleRelation::InvalidateCache() {
  // Cache-less is the common case (every derived relation an operator
  // materializes tuple by tuple); skip the lock entirely then. Mutating
  // concurrently with readers is a documented data race regardless, so the
  // relaxed pre-check gives up nothing.
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  pli_cache_.reset();
  has_pli_cache_.store(false, std::memory_order_release);
}

void FlexibleRelation::NotifyInsert() {
  // Same fast path as InvalidateCache: no cache, no work. The row vector's
  // *address* is stable across push_back (the cache points at the member),
  // so the attached cache survives and is patched in place.
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) return;
  if (!pli_options_.incremental) {
    pli_cache_.reset();
    has_pli_cache_.store(false, std::memory_order_release);
    return;
  }
  pli_cache_->OnInsert(static_cast<Pli::RowId>(rows_.size() - 1),
                       rows_.back());
}

void FlexibleRelation::NotifyUpdate(size_t index, const Tuple& old_row) {
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) return;
  if (!pli_options_.incremental) {
    pli_cache_.reset();
    has_pli_cache_.store(false, std::memory_order_release);
    return;
  }
  pli_cache_->OnUpdate(static_cast<Pli::RowId>(index), old_row, rows_[index]);
}

FlexibleRelation FlexibleRelation::Base(
    std::string name, const AttrCatalog* catalog, FlexibleScheme scheme,
    std::vector<ExplicitAD> eads,
    std::vector<std::pair<AttrId, Domain>> domains) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  // Derive the abbreviated dependency set from the EADs up front: the
  // algebra consumes ads(FR) in this form.
  for (const ExplicitAD& ead : eads) {
    auto abbrev = ead.Abbreviate();
    fr.deps_.AddAd(AttrDep{abbrev.lhs, abbrev.rhs});
  }
  fr.checker_ = std::make_shared<TypeChecker>(
      catalog, std::move(scheme), std::move(eads), std::move(domains));
  return fr;
}

FlexibleRelation FlexibleRelation::Derived(std::string name,
                                           DependencySet deps) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  fr.deps_ = std::move(deps);
  return fr;
}

Status FlexibleRelation::Insert(const Tuple& t) {
  if (checker_ != nullptr) {
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(t).WithContext(StrCat("insert into ", name_)));
  }
  if (std::find(rows_.begin(), rows_.end(), t) != rows_.end()) {
    return Status::AlreadyExists(
        StrCat("duplicate tuple rejected by set semantics of ", name_));
  }
  rows_.push_back(t);
  NotifyInsert();
  return Status::OK();
}

void FlexibleRelation::InsertUnchecked(Tuple t) {
  rows_.push_back(std::move(t));
  NotifyInsert();
}

Result<TypeChecker::TypeDelta> FlexibleRelation::Update(size_t index,
                                                        AttrId attr,
                                                        Value value,
                                                        const Tuple& fill) {
  if (index >= rows_.size()) {
    return Status::OutOfRange(StrCat("row index ", index, " out of range"));
  }
  Tuple updated = rows_[index];
  updated.Set(attr, std::move(value));

  TypeChecker::TypeDelta delta;
  if (checker_ != nullptr) {
    // Footnote 3: a determinant change entails a type change. Compute the
    // delta the EADs demand, apply it (removals drop attributes, additions
    // pull values from `fill`), then re-check the full tuple.
    delta = checker_->DeltaFor(updated);
    for (AttrId a : delta.to_remove) updated.Erase(a);
    for (AttrId a : delta.to_add) {
      const Value* v = fill.Get(a);
      if (v == nullptr) {
        return Status::FailedPrecondition(
            StrCat("type change requires a value for added attribute id ", a,
                   " (supply it via `fill`)"));
      }
      updated.Set(a, *v);
    }
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(updated).WithContext(StrCat("update of ", name_)));
  }
  Tuple previous = std::move(rows_[index]);
  rows_[index] = std::move(updated);
  NotifyUpdate(index, previous);
  return delta;
}

bool FlexibleRelation::AuditDeclaredDeps() const {
  if (deps_.empty()) return true;
  std::shared_ptr<PliCache> cache = pli_cache();
  DependencyValidator validator(cache.get());
  return validator.ValidatesAll(deps_);
}

AttrSet FlexibleRelation::ActiveAttrs() const {
  AttrSet all;
  for (const Tuple& t : rows_) all = all.Union(t.attrs());
  return all;
}

std::string FlexibleRelation::ToString(const AttrCatalog& catalog) const {
  std::ostringstream os;
  os << name_;
  if (checker_ != nullptr) {
    os << " :: " << checker_->scheme().ToString(catalog);
  }
  os << " (" << rows_.size() << " tuples)\n";
  for (const Tuple& t : rows_) os << "  " << t.ToString(catalog) << "\n";
  return os.str();
}

}  // namespace flexrel
