#include "core/flexible_relation.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "engine/pli_cache.h"
#include "engine/validator.h"
#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

// The special members exist to pin down one fact: the partition cache never
// travels with the relation. It holds a pointer to this object's row vector,
// so a copy's or move-target's rows live elsewhere; both start cache-less
// and rebuild lazily.
FlexibleRelation::FlexibleRelation(const FlexibleRelation& other)
    : name_(other.name_),
      checker_(other.checker_),
      deps_(other.deps_),
      rows_(other.rows_),
      pli_options_(other.pli_options_) {}

FlexibleRelation::FlexibleRelation(FlexibleRelation&& other) noexcept
    : name_(std::move(other.name_)),
      checker_(std::move(other.checker_)),
      deps_(std::move(other.deps_)),
      rows_(std::move(other.rows_)),
      pli_options_(other.pli_options_) {
  other.InvalidateCache();
}

FlexibleRelation& FlexibleRelation::operator=(const FlexibleRelation& other) {
  if (this != &other) {
    name_ = other.name_;
    checker_ = other.checker_;
    deps_ = other.deps_;
    rows_ = other.rows_;
    pli_options_ = other.pli_options_;
    InvalidateCache();
  }
  return *this;
}

FlexibleRelation& FlexibleRelation::operator=(
    FlexibleRelation&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    checker_ = std::move(other.checker_);
    deps_ = std::move(other.deps_);
    rows_ = std::move(other.rows_);
    pli_options_ = other.pli_options_;
    InvalidateCache();
    other.InvalidateCache();
  }
  return *this;
}

FlexibleRelation::~FlexibleRelation() = default;

std::shared_ptr<PliCache> FlexibleRelation::pli_cache() const {
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) {
    pli_cache_ = std::make_shared<PliCache>(&rows_, pli_options_);
    has_pli_cache_.store(true, std::memory_order_release);
  }
  return pli_cache_;
}

void FlexibleRelation::SetPliCacheOptions(const PliCacheOptions& options) {
  InvalidateCache();
  pli_options_ = options;
}

void FlexibleRelation::InvalidateCache() {
  // Cache-less is the common case (every derived relation an operator
  // materializes tuple by tuple); skip the lock entirely then. Mutating
  // concurrently with readers is a documented data race regardless, so the
  // relaxed pre-check gives up nothing.
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  pli_cache_.reset();
  has_pli_cache_.store(false, std::memory_order_release);
}

void FlexibleRelation::NotifyInsert() {
  // Same fast path as InvalidateCache: no cache, no work. The row vector's
  // *address* is stable across push_back (the cache points at the member),
  // so the attached cache survives and buffers the delta.
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) return;
  if (!pli_options_.incremental) {
    pli_cache_.reset();
    has_pli_cache_.store(false, std::memory_order_release);
    return;
  }
  pli_cache_->OnInsert(static_cast<Pli::RowId>(rows_.size() - 1));
}

void FlexibleRelation::NotifyUpdate(size_t index, Tuple old_row) {
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) return;
  if (!pli_options_.incremental) {
    pli_cache_.reset();
    has_pli_cache_.store(false, std::memory_order_release);
    return;
  }
  pli_cache_->OnUpdate(static_cast<Pli::RowId>(index), std::move(old_row));
}

void FlexibleRelation::NotifyBatch(
    size_t first_inserted, size_t insert_count,
    std::vector<std::pair<size_t, Tuple>> old_rows) {
  if (insert_count == 0 && old_rows.empty()) return;
  if (!has_pli_cache_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pli_mu_);
  if (pli_cache_ == nullptr) return;
  if (!pli_options_.incremental) {
    pli_cache_.reset();
    has_pli_cache_.store(false, std::memory_order_release);
    return;
  }
  if (insert_count > 0) {
    pli_cache_->OnInsertBatch(static_cast<Pli::RowId>(first_inserted),
                              insert_count);
  }
  if (!old_rows.empty()) {
    std::vector<std::pair<Pli::RowId, Tuple>> updates;
    updates.reserve(old_rows.size());
    for (auto& [index, old_row] : old_rows) {
      updates.emplace_back(static_cast<Pli::RowId>(index),
                           std::move(old_row));
    }
    pli_cache_->OnUpdateBatch(std::move(updates));
  }
}

FlexibleRelation FlexibleRelation::Base(
    std::string name, const AttrCatalog* catalog, FlexibleScheme scheme,
    std::vector<ExplicitAD> eads,
    std::vector<std::pair<AttrId, Domain>> domains) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  // Derive the abbreviated dependency set from the EADs up front: the
  // algebra consumes ads(FR) in this form.
  for (const ExplicitAD& ead : eads) {
    auto abbrev = ead.Abbreviate();
    fr.deps_.AddAd(AttrDep{abbrev.lhs, abbrev.rhs});
  }
  fr.checker_ = std::make_shared<TypeChecker>(
      catalog, std::move(scheme), std::move(eads), std::move(domains));
  return fr;
}

FlexibleRelation FlexibleRelation::Derived(std::string name,
                                           DependencySet deps) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  fr.deps_ = std::move(deps);
  return fr;
}

Status FlexibleRelation::Insert(const Tuple& t) {
  if (checker_ != nullptr) {
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(t).WithContext(StrCat("insert into ", name_)));
  }
  if (std::find(rows_.begin(), rows_.end(), t) != rows_.end()) {
    return Status::AlreadyExists(
        StrCat("duplicate tuple rejected by set semantics of ", name_));
  }
  rows_.push_back(t);
  NotifyInsert();
  return Status::OK();
}

void FlexibleRelation::InsertUnchecked(Tuple t) {
  rows_.push_back(std::move(t));
  NotifyInsert();
}

Result<TypeChecker::TypeDelta> FlexibleRelation::PrepareUpdate(
    const Tuple& current, AttrId attr, Value value, const Tuple& fill,
    Tuple* out) const {
  Tuple updated = current;
  updated.Set(attr, std::move(value));

  TypeChecker::TypeDelta delta;
  if (checker_ != nullptr) {
    // Footnote 3: a determinant change entails a type change. Compute the
    // delta the EADs demand, apply it (removals drop attributes, additions
    // pull values from `fill`), then re-check the full tuple.
    delta = checker_->DeltaFor(updated);
    for (AttrId a : delta.to_remove) updated.Erase(a);
    for (AttrId a : delta.to_add) {
      const Value* v = fill.Get(a);
      if (v == nullptr) {
        return Status::FailedPrecondition(
            StrCat("type change requires a value for added attribute id ", a,
                   " (supply it via `fill`)"));
      }
      updated.Set(a, *v);
    }
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(updated).WithContext(StrCat("update of ", name_)));
  }
  *out = std::move(updated);
  return delta;
}

Result<TypeChecker::TypeDelta> FlexibleRelation::Update(size_t index,
                                                        AttrId attr,
                                                        Value value,
                                                        const Tuple& fill) {
  if (index >= rows_.size()) {
    return Status::OutOfRange(StrCat("row index ", index, " out of range"));
  }
  Tuple updated;
  FLEXREL_ASSIGN_OR_RETURN(
      TypeChecker::TypeDelta delta,
      PrepareUpdate(rows_[index], attr, std::move(value), fill, &updated));
  Tuple previous = std::move(rows_[index]);
  rows_[index] = std::move(updated);
  NotifyUpdate(index, std::move(previous));
  return delta;
}

Status FlexibleRelation::ApplyBatchImpl(
    std::vector<Mutation> batch, std::vector<TypeChecker::TypeDelta>* deltas) {
  telemetry::ScopedSpan batch_span("relation.apply_batch");
  FLEXREL_TELEMETRY_LATENCY(batch_timer, "core.relation.batch_ns");
  FLEXREL_TELEMETRY_COUNT("core.relation.batches", 1);
  FLEXREL_TELEMETRY_COUNT("core.relation.batch_ops", batch.size());
  if (batch_span.active()) {
    batch_span.SetDetail("ops=" + std::to_string(batch.size()));
  }
  const size_t base = rows_.size();
  // Stage 1: validate every op against a staged view of the instance.
  // Nothing here touches rows_ or the attached cache, so any failure
  // leaves both exactly as they were.
  std::vector<Tuple> staged_inserts;
  // Reserving for every possible insert keeps the staged tuples' addresses
  // stable, which the pointer-keyed membership set below relies on.
  staged_inserts.reserve(static_cast<size_t>(
      std::count_if(batch.begin(), batch.end(),
                    [](const Mutation& m) { return m.is_insert; })));
  std::unordered_map<size_t, Tuple> staged_updates;  // existing-row overlays
  auto effective = [&](size_t index) -> const Tuple& {
    if (index >= base) return staged_inserts[index - base];
    auto it = staged_updates.find(index);
    return it != staged_updates.end() ? it->second : rows_[index];
  };
  // Set-semantics membership of the staged instance, built lazily on the
  // first insert op (updates never duplicate-check, matching Update()).
  // Hashed pointers into rows_ and the staged containers — all
  // address-stable for the staging phase — so bulk loads are O(rows)
  // without deep-copying a second instance, unlike the per-op linear scan
  // Insert() pays.
  struct TuplePtrHash {
    size_t operator()(const Tuple* t) const { return t->Hash(); }
  };
  struct TuplePtrEq {
    bool operator()(const Tuple* a, const Tuple* b) const { return *a == *b; }
  };
  std::optional<std::unordered_multiset<const Tuple*, TuplePtrHash, TuplePtrEq>>
      instance;
  auto ensure_instance = [&] {
    if (instance.has_value()) return;
    instance.emplace();
    instance->reserve(base + staged_inserts.size());
    for (size_t i = 0; i < base + staged_inserts.size(); ++i) {
      instance->insert(&effective(i));
    }
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    Mutation& m = batch[i];
    if (m.is_insert) {
      if (checker_ != nullptr) {
        FLEXREL_RETURN_IF_ERROR(checker_->Check(m.row).WithContext(
            StrCat("batch op#", i, ": insert into ", name_)));
      }
      ensure_instance();
      if (instance->count(&m.row) > 0) {
        return Status::AlreadyExists(
            StrCat("batch op#", i, ": duplicate tuple rejected by set ",
                   "semantics of ", name_));
      }
      staged_inserts.push_back(std::move(m.row));
      instance->insert(&staged_inserts.back());
    } else {
      UpdateSpec& u = m.update;
      if (u.index >= base + staged_inserts.size()) {
        return Status::OutOfRange(
            StrCat("batch op#", i, ": row index ", u.index, " out of range"));
      }
      // A reference suffices: `before` is consumed by the calls below,
      // all of which complete before the staged slot is overwritten.
      const Tuple& before = effective(u.index);
      Tuple after;
      auto delta =
          PrepareUpdate(before, u.attr, std::move(u.value), u.fill, &after);
      if (!delta.ok()) {
        return delta.status().WithContext(StrCat("batch op#", i));
      }
      if (deltas != nullptr) deltas->push_back(std::move(delta).value());
      if (instance.has_value()) {
        // Retire the pre-update state by pointer identity. Value-equal
        // duplicates are legal mid-batch (updates skip the dup check), so
        // find() could pick a twin and leave `before`'s own pointer in the
        // set while its slot is overwritten below — a live hash key
        // mutating under the container.
        auto [lo, hi] = instance->equal_range(&before);
        for (auto it = lo; it != hi; ++it) {
          if (*it == &before) {
            instance->erase(it);
            break;
          }
        }
      }
      if (u.index >= base) {
        Tuple& slot = staged_inserts[u.index - base];
        slot = std::move(after);
        if (instance.has_value()) instance->insert(&slot);
      } else {
        Tuple& slot =
            staged_updates.insert_or_assign(u.index, std::move(after))
                .first->second;
        if (instance.has_value()) instance->insert(&slot);
      }
    }
  }
  // Stage 2: commit — nothing below can fail. Append the staged inserts,
  // swap the staged updates in, then hand the cache the whole delta as one
  // buffered batch.
  const size_t insert_count = staged_inserts.size();
  rows_.reserve(base + insert_count);
  for (Tuple& t : staged_inserts) rows_.push_back(std::move(t));
  std::vector<std::pair<size_t, Tuple>> old_rows;
  old_rows.reserve(staged_updates.size());
  for (auto& [index, staged] : staged_updates) {
    old_rows.emplace_back(index, std::move(rows_[index]));
    rows_[index] = std::move(staged);
  }
  NotifyBatch(base, insert_count, std::move(old_rows));
  return Status::OK();
}

Status FlexibleRelation::ApplyBatch(std::vector<Mutation> batch) {
  return ApplyBatchImpl(std::move(batch), nullptr);
}

Status FlexibleRelation::InsertRows(std::vector<Tuple> rows) {
  std::vector<Mutation> batch;
  batch.reserve(rows.size());
  for (Tuple& t : rows) batch.push_back(Mutation::Insert(std::move(t)));
  return ApplyBatchImpl(std::move(batch), nullptr);
}

void FlexibleRelation::InsertRowsUnchecked(std::vector<Tuple> rows) {
  FLEXREL_TELEMETRY_LATENCY(batch_timer, "core.relation.batch_ns");
  FLEXREL_TELEMETRY_COUNT("core.relation.batches", 1);
  FLEXREL_TELEMETRY_COUNT("core.relation.batch_ops", rows.size());
  const size_t base = rows_.size();
  rows_.reserve(base + rows.size());
  for (Tuple& t : rows) rows_.push_back(std::move(t));
  NotifyBatch(base, rows_.size() - base, {});
}

Result<std::vector<TypeChecker::TypeDelta>> FlexibleRelation::UpdateRows(
    std::vector<UpdateSpec> updates) {
  if (checker_ == nullptr) {
    // Checker-less (derived) relations cannot fail past the bounds check —
    // no type deltas, no fills, no re-checks — so the whole batch
    // validates up front and then applies in place, skipping the staging
    // overlay. The displaced old rows feed the cache buffer directly.
    for (size_t i = 0; i < updates.size(); ++i) {
      if (updates[i].index >= rows_.size()) {
        return Status::OutOfRange(StrCat("batch op#", i, ": row index ",
                                         updates[i].index, " out of range"));
      }
    }
    FLEXREL_TELEMETRY_LATENCY(batch_timer, "core.relation.batch_ns");
    FLEXREL_TELEMETRY_COUNT("core.relation.batches", 1);
    FLEXREL_TELEMETRY_COUNT("core.relation.batch_ops", updates.size());
    std::vector<std::pair<size_t, Tuple>> old_rows;
    old_rows.reserve(updates.size());
    for (UpdateSpec& u : updates) {
      old_rows.emplace_back(u.index, rows_[u.index]);
      rows_[u.index].Set(u.attr, std::move(u.value));
    }
    NotifyBatch(rows_.size(), 0, std::move(old_rows));
    return std::vector<TypeChecker::TypeDelta>(updates.size());
  }
  std::vector<Mutation> batch;
  batch.reserve(updates.size());
  for (UpdateSpec& u : updates) {
    batch.push_back(Mutation::Update(std::move(u)));
  }
  std::vector<TypeChecker::TypeDelta> deltas;
  deltas.reserve(batch.size());
  FLEXREL_RETURN_IF_ERROR(ApplyBatchImpl(std::move(batch), &deltas));
  return deltas;
}

bool FlexibleRelation::AuditDeclaredDeps() const {
  if (deps_.empty()) return true;
  std::shared_ptr<PliCache> cache = pli_cache();
  DependencyValidator validator(cache.get());
  return validator.ValidatesAll(deps_);
}

AttrSet FlexibleRelation::ActiveAttrs() const {
  AttrSet all;
  for (const Tuple& t : rows_) all = all.Union(t.attrs());
  return all;
}

std::string FlexibleRelation::ToString(const AttrCatalog& catalog) const {
  std::ostringstream os;
  os << name_;
  if (checker_ != nullptr) {
    os << " :: " << checker_->scheme().ToString(catalog);
  }
  os << " (" << rows_.size() << " tuples)\n";
  for (const Tuple& t : rows_) os << "  " << t.ToString(catalog) << "\n";
  return os.str();
}

}  // namespace flexrel
