#include "core/flexible_relation.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace flexrel {

FlexibleRelation FlexibleRelation::Base(
    std::string name, const AttrCatalog* catalog, FlexibleScheme scheme,
    std::vector<ExplicitAD> eads,
    std::vector<std::pair<AttrId, Domain>> domains) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  // Derive the abbreviated dependency set from the EADs up front: the
  // algebra consumes ads(FR) in this form.
  for (const ExplicitAD& ead : eads) {
    auto abbrev = ead.Abbreviate();
    fr.deps_.AddAd(AttrDep{abbrev.lhs, abbrev.rhs});
  }
  fr.checker_ = std::make_shared<TypeChecker>(
      catalog, std::move(scheme), std::move(eads), std::move(domains));
  return fr;
}

FlexibleRelation FlexibleRelation::Derived(std::string name,
                                           DependencySet deps) {
  FlexibleRelation fr;
  fr.name_ = std::move(name);
  fr.deps_ = std::move(deps);
  return fr;
}

Status FlexibleRelation::Insert(const Tuple& t) {
  if (checker_ != nullptr) {
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(t).WithContext(StrCat("insert into ", name_)));
  }
  if (std::find(rows_.begin(), rows_.end(), t) != rows_.end()) {
    return Status::AlreadyExists(
        StrCat("duplicate tuple rejected by set semantics of ", name_));
  }
  rows_.push_back(t);
  return Status::OK();
}

void FlexibleRelation::InsertUnchecked(Tuple t) {
  rows_.push_back(std::move(t));
}

Result<TypeChecker::TypeDelta> FlexibleRelation::Update(size_t index,
                                                        AttrId attr,
                                                        Value value,
                                                        const Tuple& fill) {
  if (index >= rows_.size()) {
    return Status::OutOfRange(StrCat("row index ", index, " out of range"));
  }
  Tuple updated = rows_[index];
  updated.Set(attr, std::move(value));

  TypeChecker::TypeDelta delta;
  if (checker_ != nullptr) {
    // Footnote 3: a determinant change entails a type change. Compute the
    // delta the EADs demand, apply it (removals drop attributes, additions
    // pull values from `fill`), then re-check the full tuple.
    delta = checker_->DeltaFor(updated);
    for (AttrId a : delta.to_remove) updated.Erase(a);
    for (AttrId a : delta.to_add) {
      const Value* v = fill.Get(a);
      if (v == nullptr) {
        return Status::FailedPrecondition(
            StrCat("type change requires a value for added attribute id ", a,
                   " (supply it via `fill`)"));
      }
      updated.Set(a, *v);
    }
    FLEXREL_RETURN_IF_ERROR(
        checker_->Check(updated).WithContext(StrCat("update of ", name_)));
  }
  rows_[index] = std::move(updated);
  return delta;
}

AttrSet FlexibleRelation::ActiveAttrs() const {
  AttrSet all;
  for (const Tuple& t : rows_) all = all.Union(t.attrs());
  return all;
}

std::string FlexibleRelation::ToString(const AttrCatalog& catalog) const {
  std::ostringstream os;
  os << name_;
  if (checker_ != nullptr) {
    os << " :: " << checker_->scheme().ToString(catalog);
  }
  os << " (" << rows_.size() << " tuples)\n";
  for (const Tuple& t : rows_) os << "  " << t.ToString(catalog) << "\n";
  return os.str();
}

}  // namespace flexrel
