// Artificial attribute dependencies (Section 3.3).
//
// The paper: "a flexible scheme can be translated into an appropriate
// programming language type … if each existential attribute relationship is
// accompanied by an AD. If necessary, this can be obtained by introducing
// artificial ADs with artificial determining attributes."
//
// SynthesizeArtificialAds does exactly that: for every *variant region* of a
// scheme (a top-level component admitting more than one attribute
// combination) it introduces a tag attribute whose integer value indexes the
// region's realizable combinations, plus the EAD  {tag} --exp.attr--> attrs(region)
// with one variant per combination. The augmented scheme carries the tags as
// unconditioned attributes, so the *entire* variability of the original
// scheme becomes value-determined — the precondition for the PASCAL
// translation (and, the paper notes, the way image attributes of the
// multirelation model [Ahad & Basu] arise as a special case of ADs).

#ifndef FLEXREL_CORE_ARTIFICIAL_ADS_H_
#define FLEXREL_CORE_ARTIFICIAL_ADS_H_

#include <string>
#include <vector>

#include "core/explicit_ad.h"
#include "core/flexible_scheme.h"
#include "relational/domain.h"
#include "util/result.h"

namespace flexrel {

/// One synthesized variant region.
struct ArtificialRegion {
  AttrId tag;                       ///< the artificial determining attribute
  AttrSet region_attrs;             ///< attrs(region)
  std::vector<AttrSet> combinations;  ///< realizable sets, tag value = index
  ExplicitAD ead;                   ///< {tag} --exp.attr--> region_attrs
};

/// Result of the synthesis.
struct ArtificialAds {
  FlexibleScheme augmented_scheme;  ///< original + tags as unconditioned attrs
  std::vector<ArtificialRegion> regions;
  std::vector<std::pair<AttrId, Domain>> tag_domains;

  /// All synthesized EADs (convenience view over `regions`).
  std::vector<ExplicitAD> eads() const;
};

/// Synthesizes artificial ADs for `scheme`. Tag attributes are interned as
/// "<prefix><i>_tag". Fails with kOutOfRange when a region has more than
/// `max_combinations` realizable combinations (the tag domain would explode).
Result<ArtificialAds> SynthesizeArtificialAds(AttrCatalog* catalog,
                                              const FlexibleScheme& scheme,
                                              const std::string& prefix,
                                              size_t max_combinations = 4096);

/// Completes `t` (a tuple over the *original* scheme) with the tag values
/// its shape dictates: for each region, the index of the combination equal
/// to attr(t) ∩ region. Fails with kConstraintViolation when the tuple's
/// region shape matches no combination (i.e. the original scheme would have
/// rejected it).
Result<Tuple> CompleteWithTags(const ArtificialAds& ads, const Tuple& t);

/// Strips all tag attributes again (the inverse of CompleteWithTags).
Tuple StripTags(const ArtificialAds& ads, const Tuple& t);

}  // namespace flexrel

#endif  // FLEXREL_CORE_ARTIFICIAL_ADS_H_
