// Flexible schemes: the paper's single generic scheme constructor.
//
// A flexible scheme (Section 2.1) is a three-tuple
//     < at-least, at-most, { components } >
// whose components are attributes or, recursively, flexible schemes. It
// generalises the classical relational scheme (<n,n,{A1..An}>), disjoint
// unions (<1,1,...>), non-disjoint unions (<1,n,...>) and optional parts
// (<0,1,...>) with one construct — preserving, as the paper argues, the
// single-constructor elegance of Codd's model.
//
// dnf(FS), the unfolded set of admissible attribute combinations, can be
// exponential in the scheme size (Example 1 yields 14 combinations from a
// 7-attribute scheme), so membership testing and counting are implemented
// directly on the tree without expansion; full unfolding is available for
// small schemes and cross-validation.

#ifndef FLEXREL_CORE_FLEXIBLE_SCHEME_H_
#define FLEXREL_CORE_FLEXIBLE_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/attribute.h"
#include "util/result.h"

namespace flexrel {

/// A node of a flexible scheme: either a single attribute (leaf) or a
/// cardinality-constrained group of child schemes. Value type; copying is a
/// deep copy of the component tree.
class FlexibleScheme {
 public:
  /// Default: the empty scheme <0, 0, {}> admitting exactly the empty
  /// attribute combination. Useful as a placeholder before assignment.
  FlexibleScheme() = default;

  /// Leaf: a single attribute.
  static FlexibleScheme Attr(AttrId attr);

  /// Group <at_least, at_most, {components}>. Fails when
  ///  - at_least > at_most, or at_most exceeds the component count,
  ///  - an attribute occurs more than once anywhere in the tree.
  static Result<FlexibleScheme> Group(uint32_t at_least, uint32_t at_most,
                                      std::vector<FlexibleScheme> components);

  /// <n, n, {attrs}>: the classical relational scheme.
  static Result<FlexibleScheme> Relational(const AttrSet& attrs);

  /// <1, 1, {components}>: disjoint union (exactly one variant).
  static Result<FlexibleScheme> DisjointUnion(
      std::vector<FlexibleScheme> components);

  /// <1, n, {components}>: non-disjoint union (at least one).
  static Result<FlexibleScheme> NonDisjointUnion(
      std::vector<FlexibleScheme> components);

  /// <0, 1, {component}>: optional part.
  static Result<FlexibleScheme> Optional(FlexibleScheme component);

  /// Parses the paper's notation, e.g.
  ///   "<4,4,{A,B,<1,1,{C,D}>,<1,3,{E,F,G}>}>"
  /// Attribute names are interned into `catalog`. Bare names parse as leaves.
  static Result<FlexibleScheme> Parse(AttrCatalog* catalog,
                                      const std::string& text);

  bool is_leaf() const { return is_leaf_; }
  AttrId leaf_attr() const { return attr_; }
  uint32_t at_least() const { return at_least_; }
  uint32_t at_most() const { return at_most_; }
  const std::vector<FlexibleScheme>& components() const { return components_; }

  /// All attributes mentioned anywhere in the scheme (attr(FS)).
  const AttrSet& attrs() const { return attrs_; }

  /// True iff `candidate` ∈ dnf(FS): the membership test used for type
  /// checking tuple shapes. Runs on the tree in O(|tree| + |candidate|·depth)
  /// without unfolding.
  bool Admits(const AttrSet& candidate) const;

  /// |dnf(FS)| as a count of *distinct* attribute combinations, saturating
  /// at 2^63-1.
  uint64_t DnfCount() const;

  /// Unfolds dnf(FS). Fails with kOutOfRange when the count exceeds `limit`
  /// (guarding accidental exponential blowups). Results are deterministic
  /// (sorted) and duplicate-free.
  Result<std::vector<AttrSet>> Dnf(size_t limit = 1u << 20) const;

  /// Projection: a scheme admitting exactly { S ∩ keep : S ∈ dnf(this) }.
  /// Used by the algebra's project operator for scheme propagation.
  FlexibleScheme Project(const AttrSet& keep) const;

  /// Product composition: <2,2,{this, other}>. Fails on attribute overlap.
  Result<FlexibleScheme> Concat(const FlexibleScheme& other) const;

  /// Renders in the paper's notation.
  std::string ToString(const AttrCatalog& catalog) const;

  bool operator==(const FlexibleScheme& other) const;

 private:
  /// Can this node, when *chosen*, realize exactly `s` (s ⊆ attrs_)?
  bool CanRealize(const AttrSet& s) const;
  /// Can this node, when chosen, realize the empty attribute set?
  bool CanRealizeEmpty() const;

  /// Distinct realizable sets: {total, nonempty} counts, saturating.
  struct Counts {
    uint64_t total;
    bool empty_realizable;
  };
  Counts CountDistinct() const;

  void EnumerateInto(std::vector<AttrSet>* out, size_t limit, bool* overflow) const;

  bool is_leaf_ = false;
  AttrId attr_ = 0;
  uint32_t at_least_ = 0;
  uint32_t at_most_ = 0;
  std::vector<FlexibleScheme> components_;
  AttrSet attrs_;  // cached union of component attrs
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_FLEXIBLE_SCHEME_H_
