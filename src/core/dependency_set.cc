#include "core/dependency_set.h"

#include "util/string_util.h"

namespace flexrel {

AttrSet DependencySet::MentionedAttrs() const {
  AttrSet all;
  for (const FuncDep& fd : fds_) all = all.Union(fd.lhs).Union(fd.rhs);
  for (const AttrDep& ad : ads_) all = all.Union(ad.lhs).Union(ad.rhs);
  return all;
}

bool DependencySet::SatisfiedBy(const std::vector<Tuple>& rows) const {
  for (const FuncDep& fd : fds_) {
    if (!SatisfiesFuncDep(rows, fd)) return false;
  }
  for (const AttrDep& ad : ads_) {
    if (!SatisfiesAttrDep(rows, ad)) return false;
  }
  return true;
}

std::string DependencySet::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> parts;
  for (const FuncDep& fd : fds_) parts.push_back(fd.ToString(catalog));
  for (const AttrDep& ad : ads_) parts.push_back(ad.ToString(catalog));
  return "{ " + Join(parts, "; ") + " }";
}

}  // namespace flexrel
