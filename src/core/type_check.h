// Type checking for flexible relations (Section 3.1).
//
// The paper's central operational argument: flexible schemes catch
// *existential* shape errors, but only attribute dependencies catch
// *value-based* ones — e.g. the tuple
//     < ..., jobtype: 'salesman', typing-speed: high, foreign-languages: … >
// has an admissible attribute combination yet violates the jobtype EAD.
// TypeChecker layers the three checks (domains, scheme shape, EADs) and is
// invoked on insertion, update, and (via the algebra) retrieval.

#ifndef FLEXREL_CORE_TYPE_CHECK_H_
#define FLEXREL_CORE_TYPE_CHECK_H_

#include <optional>
#include <string>
#include <vector>

#include "core/explicit_ad.h"
#include "core/flexible_scheme.h"
#include "relational/domain.h"
#include "relational/tuple.h"

namespace flexrel {

/// Validates tuples against a flexible scheme, a set of EADs, and
/// per-attribute domains. Stateless after construction; shareable.
class TypeChecker {
 public:
  /// `catalog` must outlive the checker (used for error rendering).
  TypeChecker(const AttrCatalog* catalog, FlexibleScheme scheme,
              std::vector<ExplicitAD> eads,
              std::vector<std::pair<AttrId, Domain>> domains);

  /// Shape check: attr(t) ∈ dnf(scheme).
  Status CheckShape(const Tuple& t) const;

  /// Value check: every value lies in its attribute's registered domain
  /// (attributes without a registered domain are unconstrained).
  Status CheckDomains(const Tuple& t) const;

  /// Dependency check: every EAD is satisfied (Definition 2.1).
  Status CheckDependencies(const Tuple& t) const;

  /// All three checks; the first failure wins, its message explains why.
  Status Check(const Tuple& t) const;

  /// The attribute adjustments the EADs demand for `t`'s current determinant
  /// values: attributes that must be added / removed for `t` to become
  /// well-typed. This powers type-changing updates (footnote 3 of the paper:
  /// changing jobtype changes the tuple's type).
  struct TypeDelta {
    AttrSet to_add;
    AttrSet to_remove;
    bool IsNoop() const { return to_add.empty() && to_remove.empty(); }
  };
  TypeDelta DeltaFor(const Tuple& t) const;

  const FlexibleScheme& scheme() const { return scheme_; }
  const std::vector<ExplicitAD>& eads() const { return eads_; }

  /// The domain registered for `attr`, if any.
  const Domain* DomainFor(AttrId attr) const;

 private:
  const AttrCatalog* catalog_;
  FlexibleScheme scheme_;
  std::vector<ExplicitAD> eads_;
  std::vector<std::pair<AttrId, Domain>> domains_;  // sorted by AttrId
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_TYPE_CHECK_H_
