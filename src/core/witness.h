// The appendix's two-tuple witness construction.
//
// To prove completeness of 𝔄*, the paper constructs, for each dependency
// X --> Y not derivable from Σ, a two-tuple flexible relation that satisfies
// every derivable dependency yet violates the target:
//
//     attributes of X+func | attributes of X+attr − X+func | 𝔘 − X+attr
//     t1:  1 1 ... 1       |  1 1 ... 1                    |  1 ... 1
//     t2:  1 1 ... 1       |  0 0 ... 0                    |  (absent)
//
// We expose the construction as a first-class library object: it powers the
// empirical completeness checks (experiment E9) and doubles as a
// counterexample generator for "why is this dependency not implied?"
// diagnostics.

#ifndef FLEXREL_CORE_WITNESS_H_
#define FLEXREL_CORE_WITNESS_H_

#include <vector>

#include "core/closure.h"
#include "relational/tuple.h"

namespace flexrel {

/// The witness relation for a given LHS attribute set X.
struct Witness {
  Tuple t1;  ///< defined on all of `universe`, every value 1
  Tuple t2;  ///< defined on X+attr: 1 on X+func, 0 on X+attr − X+func
  AttrSet func_closure;  ///< X+func under Σ
  AttrSet attr_closure;  ///< X+attr under Σ (system 𝔄*)

  /// The instance {t1, t2} as a row vector for the satisfaction checkers.
  std::vector<Tuple> rows() const { return {t1, t2}; }
};

/// Builds the appendix construction for `x` over `universe` (𝔄* closures).
/// Requires x ⊆ universe; Σ's mentioned attributes should lie in `universe`
/// for the completeness guarantees to hold.
Witness BuildWitness(const AttrSet& universe, const AttrSet& x,
                     const DependencySet& sigma);

/// Convenience: true iff the witness for target.lhs *violates* the target —
/// by Theorem 4.2 this holds exactly when Σ does not imply the target.
bool WitnessRefutesAd(const AttrSet& universe, const DependencySet& sigma,
                      const AttrDep& target);
bool WitnessRefutesFd(const AttrSet& universe, const DependencySet& sigma,
                      const FuncDep& target);

}  // namespace flexrel

#endif  // FLEXREL_CORE_WITNESS_H_
