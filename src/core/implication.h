// Constructive derivations (proof traces) in the axiom systems 𝔄 and 𝔄*.
//
// Where closure.h answers *whether* Σ ⊢ X --attr--> Y, this module produces
// the witnessing sequence of rule applications — the machine-checkable analog
// of the derivation spelled out in Example 4 of the paper ("projecting the
// right side … yields (cf. rule (A1)) …; augmenting the left side … yields
// (cf. rule (A4)) …").

#ifndef FLEXREL_CORE_IMPLICATION_H_
#define FLEXREL_CORE_IMPLICATION_H_

#include <string>
#include <vector>

#include "core/closure.h"

namespace flexrel {

/// One application of an axiom.
struct ProofStep {
  /// Rule label: "A1".."A4", "F1".."F3", "AF1", "AF2", or "premise".
  std::string rule;
  /// Indices of earlier steps used as premises (empty for axioms/premises).
  std::vector<size_t> premises;
  /// The dependency concluded by this step, rendered.
  std::string conclusion;
};

/// A complete derivation; the last step concludes the target.
struct Derivation {
  std::vector<ProofStep> steps;

  /// Multi-line rendering:
  ///   [0] premise                     {jobtype} --attr--> {...}
  ///   [1] A1 [0]                      {jobtype} --attr--> {typing-speed}
  std::string ToString() const;
};

/// Derives Σ ⊢ target in the chosen system; kNotFound when not derivable
/// (which, by Theorems 4.1/4.2, means not implied).
Result<Derivation> DeriveAttrDep(const AttrCatalog& catalog,
                                 const DependencySet& sigma,
                                 const AttrDep& target, AxiomSystem system);

/// Derives Σ ⊢ target for an FD (rules F1–F3 of 𝔄*).
Result<Derivation> DeriveFuncDep(const AttrCatalog& catalog,
                                 const DependencySet& sigma,
                                 const FuncDep& target);

}  // namespace flexrel

#endif  // FLEXREL_CORE_IMPLICATION_H_
