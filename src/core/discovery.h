// Dependency discovery: mining the ADs and FDs an instance satisfies.
//
// The paper introduces ADs as *declared* constraints; a DBA migrating an
// existing null-ridden or heterogeneous dataset into flexible relations
// needs the inverse operation — find the value-based existence patterns
// hiding in the data. Discovery enumerates candidate determinants up to a
// bounded size and reports, per determinant, the maximal determined set
// satisfied by the instance (Definitions 4.1 / 4.2 semantics). Results are
// sound and complete w.r.t. the instance for the explored LHS sizes; as with
// all dependency mining they are hypotheses about the domain, not proofs.

#ifndef FLEXREL_CORE_DISCOVERY_H_
#define FLEXREL_CORE_DISCOVERY_H_

#include <vector>

#include "core/dependency_set.h"

namespace flexrel {

/// How the engine path walks the candidate lattice. Both strategies return
/// bit-identical result vectors (same dependencies, same order); they differ
/// only in how much exact partition validation they pay per level.
enum class DiscoveryStrategy {
  /// Exact maximal-RHS validation for every lattice candidate — the
  /// cross-validated oracle every other strategy is differentially tested
  /// against.
  kLevelWise,
  /// HyFD-style: sample tuple pairs from within PLI clusters to collect
  /// agree-set evidence, skip candidates the evidence already falsifies
  /// completely, and run exact validation only on the surviving frontier
  /// (src/engine/hybrid_discovery.h).
  kHybrid,
};

/// Bounds for the discovery enumeration.
struct DiscoveryOptions {
  /// Maximal determinant size explored (the lattice grows as |U|^k).
  size_t max_lhs_size = 2;
  /// Skip dependencies already implied (via the axiom systems) by ones
  /// discovered at smaller determinants — reports generators only.
  bool minimal_only = true;
  /// Validate candidates through the partition engine (src/engine/): cached
  /// stripped partitions intersected up the lattice, parallel per level.
  /// False keeps the original hash-grouping reference path; both produce
  /// identical results (cross-validated by tests/engine_discovery_test.cc).
  bool use_engine = true;
  /// Worker threads for the engine path; 0 = hardware concurrency. Ignored
  /// by the reference path.
  size_t num_threads = 0;
  /// Lattice traversal of the engine path (ignored by the reference path).
  DiscoveryStrategy strategy = DiscoveryStrategy::kLevelWise;
};

/// All non-trivial ADs X --attr--> Y with |X| <= max_lhs_size satisfied by
/// `rows`, Y maximal per X. With minimal_only, an AD is dropped when some
/// previously reported AD implies it under system 𝔄.
std::vector<AttrDep> DiscoverAttrDeps(const std::vector<Tuple>& rows,
                                      const AttrSet& universe,
                                      const DiscoveryOptions& options = {});

/// The FD counterpart (Definition 4.2 semantics, distinct-pair reading).
std::vector<FuncDep> DiscoverFuncDeps(const std::vector<Tuple>& rows,
                                      const AttrSet& universe,
                                      const DiscoveryOptions& options = {});

/// Convenience: both kinds bundled into a DependencySet.
DependencySet DiscoverDependencies(const std::vector<Tuple>& rows,
                                   const AttrSet& universe,
                                   const DiscoveryOptions& options = {});

}  // namespace flexrel

#endif  // FLEXREL_CORE_DISCOVERY_H_
