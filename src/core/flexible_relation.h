// Flexible relations: FR = < FS, inst > (Section 2.1).
//
// A flexible relation couples a flexible scheme with an instance — a finite
// *set* of tuples drawn from dom(FS) = ∪_{X ∈ dnf(FS)} Tup(X) — plus the
// EADs declared over it. Inserts and updates are type-checked; updates that
// change determinant values trigger the type-change handling of footnote 3.
//
// Algebra operators produce derived relations whose shape is no longer
// governed by a declared scheme (the paper's closure discussion in
// Section 4.3); such relations carry scheme() == nullopt but still propagate
// abbreviated dependencies.

#ifndef FLEXREL_CORE_FLEXIBLE_RELATION_H_
#define FLEXREL_CORE_FLEXIBLE_RELATION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/dependency_set.h"
#include "core/type_check.h"
#include "engine/pli_cache_options.h"

namespace flexrel {

class PliCache;

/// A heterogeneous, strongly typed set of tuples.
class FlexibleRelation {
 public:
  FlexibleRelation() = default;
  FlexibleRelation(const FlexibleRelation& other);
  FlexibleRelation(FlexibleRelation&& other) noexcept;
  FlexibleRelation& operator=(const FlexibleRelation& other);
  FlexibleRelation& operator=(FlexibleRelation&& other) noexcept;
  ~FlexibleRelation();
  /// A base relation with declared scheme, EADs, and domains.
  static FlexibleRelation Base(std::string name, const AttrCatalog* catalog,
                               FlexibleScheme scheme,
                               std::vector<ExplicitAD> eads,
                               std::vector<std::pair<AttrId, Domain>> domains);

  /// A derived relation (algebra output): no scheme, only the propagated
  /// abbreviated dependencies.
  static FlexibleRelation Derived(std::string name, DependencySet deps);

  const std::string& name() const { return name_; }
  bool has_checker() const { return checker_ != nullptr; }
  const TypeChecker* checker() const { return checker_.get(); }

  /// The abbreviated dependency view ads(FR) / fds(FR) used by the algebra's
  /// propagation rules (Theorem 4.3).
  const DependencySet& deps() const { return deps_; }
  DependencySet* mutable_deps() { return &deps_; }

  /// Type-checked insert (set semantics: duplicate tuples are rejected, as
  /// instances are sets of tuples).
  Status Insert(const Tuple& t);

  /// Insert without type checks (used by algebra operators, whose outputs
  /// are well-typed by construction, and by the decomposition baselines).
  void InsertUnchecked(Tuple t);

  /// Updates attribute `attr` of row `index` to `value`.
  ///
  /// When the new value flips an EAD variant, the tuple's *type* changes
  /// (footnote 3): attributes demanded by the new variant are missing and
  /// attributes of the old variant are now illegal. `fill` supplies values
  /// for attributes that must be added; the update fails if `fill` lacks one
  /// of them. Returns the applied delta.
  Result<TypeChecker::TypeDelta> Update(size_t index, AttrId attr, Value value,
                                        const Tuple& fill = Tuple());

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// All attributes appearing in any row.
  AttrSet ActiveAttrs() const;

  /// True iff every declared dependency holds across the instance
  /// (instance-level audit; per-tuple EAD checks happen on insert).
  bool SatisfiesDeclaredDeps() const { return deps_.SatisfiedBy(rows_); }

  /// Engine-backed counterpart of SatisfiesDeclaredDeps: validates Σ
  /// through the attached partition cache (engine/validator.h) instead of
  /// re-hashing the instance once per dependency — the audit the
  /// storage/serialization load path runs over declared dependencies.
  bool AuditDeclaredDeps() const;

  /// The relation's partition cache over the current instance, built lazily
  /// on first use. The engine-backed evaluator (algebra/evaluate.h) reads it
  /// to resolve equality selections and to estimate join orders.
  ///
  /// Maintenance contract: Insert/InsertUnchecked/Update keep the attached
  /// cache alive and *patch* it — PliCache::OnInsert/OnUpdate move the
  /// mutated row between the affected clusters of every cached partition
  /// and value index, so the next query pays O(cluster) patch work instead
  /// of a full O(rows) re-partition. Partition/index pointers obtained
  /// before a mutation must still be treated as invalidated by it: they
  /// usually observe the patched (current) instance, but when the cache
  /// decides a partition is cheaper to rebuild than to patch it drops the
  /// entry and a held pointer keeps the unmaintained object. Re-Get after
  /// mutations; copy a partition to freeze it. With
  /// pli_cache_options().incremental == false the historical behavior is
  /// restored: every mutation drops the cache wholesale and the next call
  /// rebuilds it from scratch (the oracle the incremental path is
  /// soak-tested against — tests/engine_incremental_test.cc). In both modes
  /// mutating the relation while another thread evaluates it is a data race
  /// exactly as iterating rows() would be. Copies and moves of the relation
  /// start cache-less.
  std::shared_ptr<PliCache> pli_cache() const;

  /// Replaces the options the lazily built cache is created with (and the
  /// mutation-maintenance mode above). Drops any existing cache; the next
  /// pli_cache() call rebuilds under the new options.
  void SetPliCacheOptions(const PliCacheOptions& options);
  const PliCacheOptions& pli_cache_options() const { return pli_options_; }

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  void InvalidateCache();
  /// Mutation fan-out to the attached cache: patch it (incremental mode) or
  /// drop it (fallback mode). Called after rows_ has been mutated.
  void NotifyInsert();
  void NotifyUpdate(size_t index, const Tuple& old_row);

  std::string name_;
  std::shared_ptr<const TypeChecker> checker_;  // null for derived relations
  DependencySet deps_;
  std::vector<Tuple> rows_;
  PliCacheOptions pli_options_;
  mutable std::mutex pli_mu_;  // guards lazy creation of pli_cache_
  mutable std::shared_ptr<PliCache> pli_cache_;
  // Fast-path flag so the per-tuple InsertUnchecked loop skips the mutex
  // while no cache exists (the overwhelmingly common case for the derived
  // relations algebra operators materialize).
  mutable std::atomic<bool> has_pli_cache_{false};
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_FLEXIBLE_RELATION_H_
