// Flexible relations: FR = < FS, inst > (Section 2.1).
//
// A flexible relation couples a flexible scheme with an instance — a finite
// *set* of tuples drawn from dom(FS) = ∪_{X ∈ dnf(FS)} Tup(X) — plus the
// EADs declared over it. Inserts and updates are type-checked; updates that
// change determinant values trigger the type-change handling of footnote 3.
//
// Algebra operators produce derived relations whose shape is no longer
// governed by a declared scheme (the paper's closure discussion in
// Section 4.3); such relations carry scheme() == nullopt but still propagate
// abbreviated dependencies.

#ifndef FLEXREL_CORE_FLEXIBLE_RELATION_H_
#define FLEXREL_CORE_FLEXIBLE_RELATION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dependency_set.h"
#include "core/type_check.h"
#include "engine/pli_cache_options.h"

namespace flexrel {

class PliCache;

/// A heterogeneous, strongly typed set of tuples.
class FlexibleRelation {
 public:
  FlexibleRelation() = default;
  FlexibleRelation(const FlexibleRelation& other);
  FlexibleRelation(FlexibleRelation&& other) noexcept;
  FlexibleRelation& operator=(const FlexibleRelation& other);
  FlexibleRelation& operator=(FlexibleRelation&& other) noexcept;
  ~FlexibleRelation();
  /// A base relation with declared scheme, EADs, and domains.
  static FlexibleRelation Base(std::string name, const AttrCatalog* catalog,
                               FlexibleScheme scheme,
                               std::vector<ExplicitAD> eads,
                               std::vector<std::pair<AttrId, Domain>> domains);

  /// A derived relation (algebra output): no scheme, only the propagated
  /// abbreviated dependencies.
  static FlexibleRelation Derived(std::string name, DependencySet deps);

  const std::string& name() const { return name_; }
  bool has_checker() const { return checker_ != nullptr; }
  const TypeChecker* checker() const { return checker_.get(); }

  /// The abbreviated dependency view ads(FR) / fds(FR) used by the algebra's
  /// propagation rules (Theorem 4.3).
  const DependencySet& deps() const { return deps_; }
  DependencySet* mutable_deps() { return &deps_; }

  /// Type-checked insert (set semantics: duplicate tuples are rejected, as
  /// instances are sets of tuples).
  Status Insert(const Tuple& t);

  /// Insert without type checks (used by algebra operators, whose outputs
  /// are well-typed by construction, and by the decomposition baselines).
  void InsertUnchecked(Tuple t);

  /// Updates attribute `attr` of row `index` to `value`.
  ///
  /// When the new value flips an EAD variant, the tuple's *type* changes
  /// (footnote 3): attributes demanded by the new variant are missing and
  /// attributes of the old variant are now illegal. `fill` supplies values
  /// for attributes that must be added; the update fails if `fill` lacks one
  /// of them. Returns the applied delta.
  Result<TypeChecker::TypeDelta> Update(size_t index, AttrId attr, Value value,
                                        const Tuple& fill = Tuple());

  /// One attribute update of one row, as staged by the batch entry points
  /// below; `fill` plays the same footnote-3 role as in Update().
  struct UpdateSpec {
    size_t index = 0;
    AttrId attr = 0;
    Value value;
    Tuple fill;
  };

  /// One operation of a transactional mutation batch. Ops apply in order
  /// against the *staged* instance: an update may target a row inserted
  /// earlier in the same batch (indexes are into the post-batch row
  /// vector) and observes earlier staged states, so a batch validates
  /// exactly like the equivalent op-by-op sequence would.
  struct Mutation {
    static Mutation Insert(Tuple row) {
      Mutation m;
      m.is_insert = true;
      m.row = std::move(row);
      return m;
    }
    static Mutation Update(UpdateSpec spec) {
      Mutation m;
      m.update = std::move(spec);
      return m;
    }
    static Mutation Update(size_t index, AttrId attr, Value value,
                           Tuple fill = Tuple()) {
      return Update(UpdateSpec{index, attr, std::move(value),
                               std::move(fill)});
    }

    bool is_insert = false;
    Tuple row;          // insert payload
    UpdateSpec update;  // update payload
  };

  /// Transactional batch mutation: validates the WHOLE delta — type
  /// checks, set semantics for inserts, footnote-3 fill requirements —
  /// against a staged view before touching the instance or the attached
  /// partition cache. On any failure the relation and cache are byte-
  /// identical to before the call and the error names the offending op;
  /// on success the rows mutate and the cache receives the delta as one
  /// buffered batch (flushed adaptively on the next read, see
  /// engine/pli_cache.h) instead of per-row patch work.
  Status ApplyBatch(std::vector<Mutation> batch);

  /// Type-checked bulk insert: ApplyBatch over pure inserts. All-or-
  /// nothing; duplicate rows (against the instance or within the batch)
  /// are rejected by set semantics like Insert().
  Status InsertRows(std::vector<Tuple> rows);

  /// Bulk counterpart of InsertUnchecked: appends without checks and
  /// notifies the cache once.
  void InsertRowsUnchecked(std::vector<Tuple> rows);

  /// Transactional bulk update: ApplyBatch over pure updates, returning
  /// one applied TypeDelta per spec (in order) like Update() does.
  Result<std::vector<TypeChecker::TypeDelta>> UpdateRows(
      std::vector<UpdateSpec> updates);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// All attributes appearing in any row.
  AttrSet ActiveAttrs() const;

  /// True iff every declared dependency holds across the instance
  /// (instance-level audit; per-tuple EAD checks happen on insert).
  bool SatisfiesDeclaredDeps() const { return deps_.SatisfiedBy(rows_); }

  /// Engine-backed counterpart of SatisfiesDeclaredDeps: validates Σ
  /// through the attached partition cache (engine/validator.h) instead of
  /// re-hashing the instance once per dependency — the audit the
  /// storage/serialization load path runs over declared dependencies.
  bool AuditDeclaredDeps() const;

  /// The relation's partition cache over the current instance, built lazily
  /// on first use. The engine-backed evaluator (algebra/evaluate.h) reads it
  /// to resolve equality selections and to estimate join orders.
  ///
  /// Maintenance contract: all mutation entry points (single-row and
  /// batch) keep the attached cache alive and report their deltas to it —
  /// PliCache buffers them and the next read (Get/IndexFor/ProbeFor, i.e.
  /// any evaluator or validator access) flushes the buffer adaptively:
  /// small bursts patch clusters row by row, larger ones are group-applied
  /// in one sorted splice per affected structure, and burst sizes past
  /// max(drop_threshold, rows/2) drop everything for one lazy rebuild
  /// (engine/pli_cache.h). Partitions live in CSR-arena cluster storage by
  /// default (pli_cache_options().arena_storage = false pins the
  /// vector-of-vectors reference layout), and the per-attribute probe
  /// tables are patched in place across flushes rather than rebuilt.
  /// Partition/index/probe pointers obtained before a mutation must be
  /// treated as invalidated by it: until some reader flushes they observe
  /// the pre-mutation instance, a probe's labels are patched in place by
  /// that flush, and a partition the flush drops as cheaper-to-rebuild
  /// leaves a held pointer on the unmaintained object. Re-Get after
  /// mutations; copy a partition to freeze it. With
  /// pli_cache_options().incremental == false the historical behavior is
  /// restored: every mutation drops the cache wholesale and the next call
  /// rebuilds it from scratch (the oracle the incremental path is
  /// soak-tested against — tests/engine_incremental_test.cc, which also
  /// runs a reference-storage twin through every flush arm).
  ///
  /// Concurrency (engine/README.md "Concurrency" for the full rules): in
  /// the default COW mode (pli_cache_options().cow_reads) cache reads the
  /// published snapshot can answer are lock-free and safe concurrently
  /// with mutations — mutation hooks clone, patch, and publish before
  /// returning, and a held structure stays frozen at its epoch (re-Get to
  /// see newer epochs; stale is the worst case, torn never). What remains
  /// a data race is touching the row storage while a mutator runs: a cold
  /// cache miss rebuilds from rows() on the locked population path, and
  /// iterating rows() directly races exactly as before. In locked mode
  /// (cow_reads = false) there is no snapshot, so any concurrent
  /// evaluation must serialize with mutators externally. Copies and moves
  /// of the relation start cache-less.
  ///
  /// Telemetry contract: the batch mutation paths carry telemetry
  /// instrumentation (core.relation.* counters and the
  /// "relation.apply_batch" span, src/telemetry/telemetry.h), and it is
  /// mutation-hook-safe — the counters are relaxed atomics and the span
  /// ring takes only the registry's own mutex, while the cache fan-out
  /// (NotifyBatch) only appends to the pending-delta buffer under the
  /// cache's pli_mu_. The two lock domains never nest the other way, so
  /// instrumented mutations introduce no lock inversion, and enabling or
  /// disabling telemetry mid-run cannot change which hooks fire or the
  /// relation/cache state they produce.
  std::shared_ptr<PliCache> pli_cache() const;

  /// Replaces the options the lazily built cache is created with (and the
  /// mutation-maintenance mode above). Drops any existing cache; the next
  /// pli_cache() call rebuilds under the new options.
  void SetPliCacheOptions(const PliCacheOptions& options);
  const PliCacheOptions& pli_cache_options() const { return pli_options_; }

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  void InvalidateCache();
  /// Mutation fan-out to the attached cache: buffer the delta (incremental
  /// mode) or drop the cache (fallback mode). Called after rows_ has been
  /// mutated; NotifyUpdate takes ownership of the displaced old row.
  void NotifyInsert();
  void NotifyUpdate(size_t index, Tuple old_row);
  /// Batch fan-out: `insert_count` rows appended starting at
  /// `first_inserted`, plus (index, displaced old row) pairs for in-place
  /// updates — one lock round-trip for the whole delta.
  void NotifyBatch(size_t first_inserted, size_t insert_count,
                   std::vector<std::pair<size_t, Tuple>> old_rows);

  /// The shared validation half of Update/ApplyBatch: computes the updated
  /// state of `current` (footnote-3 delta applied, `fill` consulted,
  /// checker consulted) into `out` without touching the instance.
  Result<TypeChecker::TypeDelta> PrepareUpdate(const Tuple& current,
                                               AttrId attr, Value value,
                                               const Tuple& fill,
                                               Tuple* out) const;

  /// ApplyBatch body; when `deltas` is non-null it receives one TypeDelta
  /// per update op, in op order.
  Status ApplyBatchImpl(std::vector<Mutation> batch,
                        std::vector<TypeChecker::TypeDelta>* deltas);

  std::string name_;
  std::shared_ptr<const TypeChecker> checker_;  // null for derived relations
  DependencySet deps_;
  std::vector<Tuple> rows_;
  PliCacheOptions pli_options_;
  mutable std::mutex pli_mu_;  // guards lazy creation of pli_cache_
  mutable std::shared_ptr<PliCache> pli_cache_;
  // Fast-path flag so the per-tuple InsertUnchecked loop skips the mutex
  // while no cache exists (the overwhelmingly common case for the derived
  // relations algebra operators materialize).
  mutable std::atomic<bool> has_pli_cache_{false};
};

}  // namespace flexrel

#endif  // FLEXREL_CORE_FLEXIBLE_RELATION_H_
