#include "core/implication.h"

#include <sstream>

#include "util/string_util.h"

namespace flexrel {

namespace {

std::string RenderAd(const AttrCatalog& catalog, const AttrSet& lhs,
                     const AttrSet& rhs) {
  return StrCat(lhs.ToString(catalog), " --attr--> ", rhs.ToString(catalog));
}

std::string RenderFd(const AttrCatalog& catalog, const AttrSet& lhs,
                     const AttrSet& rhs) {
  return StrCat(lhs.ToString(catalog), " --func--> ", rhs.ToString(catalog));
}

// Appends a step, returning its index.
size_t Emit(Derivation* d, std::string rule, std::vector<size_t> premises,
            std::string conclusion) {
  d->steps.push_back({std::move(rule), std::move(premises),
                      std::move(conclusion)});
  return d->steps.size() - 1;
}

// Derives X --func--> Y (Y ⊆ X+func assumed pre-checked). Returns the index
// of the concluding step.
size_t DeriveFdSteps(const AttrCatalog& catalog, const DependencySet& sigma,
                     const AttrSet& x, const AttrSet& y, Derivation* d) {
  // Replay the closure fixpoint, tracking for the growing set `cur` a step
  // index proving X --func--> cur.
  AttrSet cur = x;
  size_t have = Emit(d, "F1", {}, RenderFd(catalog, x, x));  // X --func--> X
  if (y.IsSubsetOf(x)) {
    // X --func--> Y directly by reflexivity.
    return Emit(d, "F1", {}, RenderFd(catalog, x, y));
  }
  bool changed = true;
  while (changed && !y.IsSubsetOf(cur)) {
    changed = false;
    for (const FuncDep& fd : sigma.fds()) {
      if (fd.lhs.IsSubsetOf(cur) && !fd.rhs.IsSubsetOf(cur)) {
        size_t prem = Emit(d, "premise", {},
                           RenderFd(catalog, fd.lhs, fd.rhs));
        // F2: augment premise with cur: cur --func--> rhs ∪ cur.
        AttrSet next = cur.Union(fd.rhs);
        size_t aug = Emit(d, "F2", {prem},
                          RenderFd(catalog, cur, next));
        // F3: X --func--> cur, cur --func--> next ⊢ X --func--> next.
        have = Emit(d, "F3", {have, aug}, RenderFd(catalog, x, next));
        cur = next;
        changed = true;
        break;
      }
    }
  }
  // Project down: F1 gives next --func--> Y (Y ⊆ cur), then F3.
  size_t proj = Emit(d, "F1", {}, RenderFd(catalog, cur, y));
  return Emit(d, "F3", {have, proj}, RenderFd(catalog, x, y));
}

}  // namespace

std::string Derivation::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    os << "[" << i << "] " << steps[i].rule;
    if (!steps[i].premises.empty()) {
      os << " [" << Join(steps[i].premises, ", ") << "]";
    }
    os << "  " << steps[i].conclusion << "\n";
  }
  return os.str();
}

Result<Derivation> DeriveFuncDep(const AttrCatalog& catalog,
                                 const DependencySet& sigma,
                                 const FuncDep& target) {
  if (!target.rhs.IsSubsetOf(FuncClosure(target.lhs, sigma))) {
    return Status::NotFound(
        StrCat("not derivable: ", target.ToString(catalog)));
  }
  Derivation d;
  DeriveFdSteps(catalog, sigma, target.lhs, target.rhs, &d);
  return d;
}

Result<Derivation> DeriveAttrDep(const AttrCatalog& catalog,
                                 const DependencySet& sigma,
                                 const AttrDep& target, AxiomSystem system) {
  const AttrSet& x = target.lhs;
  const AttrSet& y = target.rhs;
  if (!y.IsSubsetOf(AttrClosure(x, sigma, system))) {
    return Status::NotFound(
        StrCat("not derivable: ", target.ToString(catalog)));
  }
  Derivation d;
  // Collect per-piece conclusions, then combine with A2.
  std::vector<size_t> pieces;
  AttrSet covered;

  AttrSet seed =
      (system == AxiomSystem::kAdOnly) ? x : FuncClosure(x, sigma);

  // Piece 1: the reflexive/functional part of Y.
  AttrSet y_seed = y.Intersect(seed);
  if (!y_seed.empty()) {
    if (y_seed.IsSubsetOf(x)) {
      // A3 (in 𝔄) / F1+AF1 (in 𝔄*) — render with the system's own rule.
      if (system == AxiomSystem::kAdOnly) {
        pieces.push_back(Emit(&d, "A3", {}, RenderAd(catalog, x, y_seed)));
      } else {
        size_t fd_step = DeriveFdSteps(catalog, sigma, x, y_seed, &d);
        pieces.push_back(
            Emit(&d, "AF1", {fd_step}, RenderAd(catalog, x, y_seed)));
      }
    } else {
      // Only reachable in 𝔄*: functionally determined attributes.
      size_t fd_step = DeriveFdSteps(catalog, sigma, x, y_seed, &d);
      pieces.push_back(
          Emit(&d, "AF1", {fd_step}, RenderAd(catalog, x, y_seed)));
    }
    covered = covered.Union(y_seed);
  }

  // Pieces from declared ADs whose LHS lies within the seed.
  for (const AttrDep& ad : sigma.ads()) {
    if (covered == y) break;
    if (!ad.lhs.IsSubsetOf(seed)) continue;
    AttrSet contribution = ad.rhs.Intersect(y).Minus(covered);
    if (contribution.empty()) continue;
    size_t prem =
        Emit(&d, "premise", {}, RenderAd(catalog, ad.lhs, ad.rhs));
    // A1: project the RHS down to the needed contribution.
    size_t proj = prem;
    if (contribution != ad.rhs) {
      proj = Emit(&d, "A1", {prem},
                  RenderAd(catalog, ad.lhs, contribution));
    }
    size_t with_x_lhs;
    if (ad.lhs == x) {
      with_x_lhs = proj;
    } else if (ad.lhs.IsSubsetOf(x)) {
      // A4: augment the LHS up to X.
      with_x_lhs =
          Emit(&d, "A4", {proj}, RenderAd(catalog, x, contribution));
    } else {
      // 𝔄* only: LHS functionally reachable from X; AF2 fires the AD
      // through X --func--> lhs.
      size_t fd_step = DeriveFdSteps(catalog, sigma, x, ad.lhs, &d);
      with_x_lhs = Emit(&d, "AF2", {fd_step, proj},
                        RenderAd(catalog, x, contribution));
    }
    pieces.push_back(with_x_lhs);
    covered = covered.Union(contribution);
  }

  if (pieces.empty()) {
    // y must be empty: X --attr--> ∅ by reflexivity.
    pieces.push_back(Emit(&d,
                          system == AxiomSystem::kAdOnly ? "A3" : "F1",
                          {}, RenderAd(catalog, x, y)));
    return d;
  }

  // A2: fold the pieces together (each piece contributes a subset of Y, and
  // the closure check guarantees the union is exactly Y).
  size_t acc = pieces[0];
  for (size_t i = 1; i < pieces.size(); ++i) {
    acc = Emit(&d, "A2", {acc, pieces[i]}, RenderAd(catalog, x, covered));
  }
  (void)acc;
  return d;
}

}  // namespace flexrel
