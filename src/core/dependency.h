// Abbreviated attribute dependencies and (adapted) functional dependencies.
//
// Definition 4.1: a flexible relation satisfies X --attr--> Y iff any two
// tuples defined on X that agree on X possess the same subset of Y as
// attributes. Note the assertion is purely *existential* — nothing is said
// about the values in Y. This is exactly why transitivity fails for ADs.
//
// Definition 4.2 adapts FDs to flexible relations by guarding value access:
// two tuples defined on X that agree on X must both be defined on Y and
// agree on Y.
//
// Reading note: we quantify over *distinct* tuple pairs. Including the
// degenerate pair t1 = t2 would force "X ⊆ attr(t) implies Y ⊆ attr(t)" for
// every single tuple, and under that reading the appendix's two-tuple witness
// relation would violate members of Σ+ (take Σ = {A --attr--> B,
// B --func--> C}, X = {A}: t2 is defined on B but not C). The completeness
// proof therefore only works with the distinct-pair reading, which is also
// the classical two-tuple FD formulation. Instances are sets of tuples
// (duplicates are rejected on insert), so "distinct" is well defined.

#ifndef FLEXREL_CORE_DEPENDENCY_H_
#define FLEXREL_CORE_DEPENDENCY_H_

#include <string>
#include <vector>

#include "relational/attribute.h"
#include "relational/tuple.h"

namespace flexrel {

/// Abbreviated attribute dependency X --attr--> Y (Definition 4.1).
struct AttrDep {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const AttrDep& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }
  bool operator<(const AttrDep& other) const {
    if (lhs != other.lhs) return lhs < other.lhs;
    return rhs < other.rhs;
  }

  /// "X --attr--> Y" with attribute names.
  std::string ToString(const AttrCatalog& catalog) const;

  /// Trivial iff implied by reflexivity alone (Y ⊆ X).
  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }
};

/// Functional dependency X --func--> Y adapted to flexible relations
/// (Definition 4.2).
struct FuncDep {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const FuncDep& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }
  bool operator<(const FuncDep& other) const {
    if (lhs != other.lhs) return lhs < other.lhs;
    return rhs < other.rhs;
  }

  std::string ToString(const AttrCatalog& catalog) const;

  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }
};

/// Checks Definition 4.1 against an instance (any tuple container).
/// Quadratic reference implementation; the hashed variant below is used on
/// large instances.
bool SatisfiesAttrDep(const std::vector<Tuple>& rows, const AttrDep& ad);

/// Checks Definition 4.2 against an instance.
bool SatisfiesFuncDep(const std::vector<Tuple>& rows, const FuncDep& fd);

/// Hash-grouped satisfaction checks: O(n) expected, used by benchmarks and
/// the instance-level validators.
bool SatisfiesAttrDepHashed(const std::vector<Tuple>& rows, const AttrDep& ad);
bool SatisfiesFuncDepHashed(const std::vector<Tuple>& rows, const FuncDep& fd);

}  // namespace flexrel

#endif  // FLEXREL_CORE_DEPENDENCY_H_
