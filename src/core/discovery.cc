#include "core/discovery.h"

#include <unordered_map>

#include "core/closure.h"
#include "engine/parallel_discovery.h"

namespace flexrel {

namespace {

// Enumerates subsets of `universe` with size in [1, max_size], invoking
// `visit(lhs)` smallest-first (so minimality pruning sees generators first).
// Delegates to the engine's LatticeLevel so both paths share one
// enumeration order — the engine's results-identical guarantee depends on
// it.
template <typename Visitor>
void ForEachLhs(const AttrSet& universe, size_t max_size, Visitor visit) {
  for (size_t k = 1; k <= max_size && k <= universe.size(); ++k) {
    for (const AttrSet& lhs : LatticeLevel(universe, k)) visit(lhs);
  }
}

// The maximal Y such that rows satisfy X --attr--> Y: an attribute a
// qualifies iff all tuples agreeing on X share a's presence.
AttrSet MaximalAdRhs(const std::vector<Tuple>& rows, const AttrSet& lhs,
                     const AttrSet& universe) {
  // Group rows by X-projection; per group record the common presence mask.
  struct GroupInfo {
    AttrSet present;   // attributes every group member carries
    AttrSet absent;    // attributes no group member carries (lazily: track union)
    AttrSet seen_any;  // union of attrs over members
  };
  std::unordered_map<Tuple, GroupInfo, TupleHash> groups;
  for (const Tuple& t : rows) {
    if (!t.DefinedOn(lhs)) continue;
    Tuple key = t.Project(lhs);
    AttrSet attrs = t.attrs();
    auto [it, inserted] = groups.emplace(std::move(key), GroupInfo{});
    if (inserted) {
      it->second.present = attrs;
      it->second.seen_any = attrs;
    } else {
      it->second.present = it->second.present.Intersect(attrs);
      it->second.seen_any = it->second.seen_any.Union(attrs);
    }
  }
  // a qualifies iff in every group: present(a) == seen_any(a), i.e. members
  // agree on a's presence.
  AttrSet rhs = universe;
  for (const auto& [key, info] : groups) {
    (void)key;
    // Disagreement set: attributes some but not all members carry.
    AttrSet disagree = info.seen_any.Minus(info.present);
    rhs = rhs.Minus(disagree);
  }
  return rhs.Minus(lhs);  // non-trivial part
}

// The maximal Y such that rows satisfy X --func--> Y (distinct-pair
// reading): within each group of >= 2 members every member must carry a and
// agree on its value.
AttrSet MaximalFdRhs(const std::vector<Tuple>& rows, const AttrSet& lhs,
                     const AttrSet& universe) {
  struct GroupInfo {
    const Tuple* first = nullptr;
    size_t size = 0;
    AttrSet agreeing;  // attrs all members carry with equal values
  };
  std::unordered_map<Tuple, GroupInfo, TupleHash> groups;
  for (const Tuple& t : rows) {
    if (!t.DefinedOn(lhs)) continue;
    Tuple key = t.Project(lhs);
    auto [it, inserted] = groups.emplace(std::move(key), GroupInfo{});
    GroupInfo& g = it->second;
    ++g.size;
    if (inserted) {
      g.first = &t;
      g.agreeing = t.attrs();
      continue;
    }
    AttrSet still;
    for (AttrId a : g.agreeing) {
      const Value* v0 = g.first->Get(a);
      const Value* v = t.Get(a);
      if (v0 != nullptr && v != nullptr && *v0 == *v) still.Insert(a);
    }
    g.agreeing = still;
  }
  AttrSet rhs = universe;
  for (const auto& [key, g] : groups) {
    (void)key;
    if (g.size < 2) continue;  // single members impose nothing
    rhs = rhs.Intersect(g.agreeing.Union(lhs));
  }
  return rhs.Minus(lhs);
}

}  // namespace

std::vector<AttrDep> DiscoverAttrDeps(const std::vector<Tuple>& rows,
                                      const AttrSet& universe,
                                      const DiscoveryOptions& options) {
  if (options.use_engine) {
    return EngineDiscoverAttrDeps(rows, universe, ToEngineOptions(options));
  }
  std::vector<AttrDep> out;
  DependencySet found;
  ForEachLhs(universe, options.max_lhs_size, [&](const AttrSet& lhs) {
    AttrSet rhs = MaximalAdRhs(rows, lhs, universe);
    if (rhs.empty()) return;
    AttrDep candidate{lhs, rhs};
    if (options.minimal_only &&
        Implies(found, candidate, AxiomSystem::kAdOnly)) {
      return;
    }
    out.push_back(candidate);
    found.AddAd(candidate);
  });
  return out;
}

std::vector<FuncDep> DiscoverFuncDeps(const std::vector<Tuple>& rows,
                                      const AttrSet& universe,
                                      const DiscoveryOptions& options) {
  if (options.use_engine) {
    return EngineDiscoverFuncDeps(rows, universe, ToEngineOptions(options));
  }
  std::vector<FuncDep> out;
  DependencySet found;
  ForEachLhs(universe, options.max_lhs_size, [&](const AttrSet& lhs) {
    AttrSet rhs = MaximalFdRhs(rows, lhs, universe);
    if (rhs.empty()) return;
    FuncDep candidate{lhs, rhs};
    if (options.minimal_only && Implies(found, candidate)) return;
    out.push_back(candidate);
    found.AddFd(candidate);
  });
  return out;
}

DependencySet DiscoverDependencies(const std::vector<Tuple>& rows,
                                   const AttrSet& universe,
                                   const DiscoveryOptions& options) {
  if (options.use_engine) {
    return EngineDiscoverDependencies(rows, universe, ToEngineOptions(options));
  }
  DependencySet out;
  for (FuncDep& fd : DiscoverFuncDeps(rows, universe, options)) {
    out.AddFd(std::move(fd));
  }
  for (AttrDep& ad : DiscoverAttrDeps(rows, universe, options)) {
    out.AddAd(std::move(ad));
  }
  return out;
}

}  // namespace flexrel
