#include "core/dependency.h"

#include <unordered_map>

#include "util/string_util.h"

namespace flexrel {

std::string AttrDep::ToString(const AttrCatalog& catalog) const {
  return StrCat(lhs.ToString(catalog), " --attr--> ", rhs.ToString(catalog));
}

std::string FuncDep::ToString(const AttrCatalog& catalog) const {
  return StrCat(lhs.ToString(catalog), " --func--> ", rhs.ToString(catalog));
}

bool SatisfiesAttrDep(const std::vector<Tuple>& rows, const AttrDep& ad) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].DefinedOn(ad.lhs)) continue;
    for (size_t j = i + 1; j < rows.size(); ++j) {
      if (!rows[j].DefinedOn(ad.lhs)) continue;
      if (!rows[i].AgreesOn(rows[j], ad.lhs)) continue;
      AttrSet yi = rows[i].attrs().Intersect(ad.rhs);
      AttrSet yj = rows[j].attrs().Intersect(ad.rhs);
      if (yi != yj) return false;
    }
  }
  return true;
}

bool SatisfiesFuncDep(const std::vector<Tuple>& rows, const FuncDep& fd) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].DefinedOn(fd.lhs)) continue;
    for (size_t j = i + 1; j < rows.size(); ++j) {
      if (!rows[j].DefinedOn(fd.lhs)) continue;
      if (!rows[i].AgreesOn(rows[j], fd.lhs)) continue;
      if (!rows[i].DefinedOn(fd.rhs) || !rows[j].DefinedOn(fd.rhs)) {
        return false;
      }
      if (!rows[i].AgreesOn(rows[j], fd.rhs)) return false;
    }
  }
  return true;
}

bool SatisfiesAttrDepHashed(const std::vector<Tuple>& rows,
                            const AttrDep& ad) {
  // Group rows by their X-projection; within a group all Y-intersections of
  // the attribute sets must coincide.
  std::unordered_map<Tuple, AttrSet, TupleHash> groups;
  for (const Tuple& t : rows) {
    if (!t.DefinedOn(ad.lhs)) continue;
    Tuple key = t.Project(ad.lhs);
    AttrSet y = t.attrs().Intersect(ad.rhs);
    auto [it, inserted] = groups.emplace(std::move(key), y);
    if (!inserted && it->second != y) return false;
  }
  return true;
}

bool SatisfiesFuncDepHashed(const std::vector<Tuple>& rows,
                            const FuncDep& fd) {
  std::unordered_map<Tuple, Tuple, TupleHash> groups;
  for (const Tuple& t : rows) {
    if (!t.DefinedOn(fd.lhs)) continue;
    if (!t.DefinedOn(fd.rhs)) {
      // A lone undefined tuple only violates the FD when a matching partner
      // exists; Definition 4.2 requires *both* tuples defined on Y. Two
      // tuples agreeing on X where either lacks Y is a violation, and a
      // single tuple paired with itself is not. Track presence via a marker:
      // insert an empty projection and fail on any further match.
      Tuple key = t.Project(fd.lhs);
      auto [it, inserted] = groups.emplace(std::move(key), Tuple());
      if (!inserted) return false;  // pairs with an existing tuple
      continue;
    }
    Tuple key = t.Project(fd.lhs);
    Tuple y = t.Project(fd.rhs);
    auto [it, inserted] = groups.emplace(std::move(key), y);
    if (!inserted && it->second != y) return false;
  }
  return true;
}

}  // namespace flexrel
