#include "core/artificial_ads.h"

#include "util/string_util.h"

namespace flexrel {

std::vector<ExplicitAD> ArtificialAds::eads() const {
  std::vector<ExplicitAD> out;
  out.reserve(regions.size());
  for (const ArtificialRegion& r : regions) out.push_back(r.ead);
  return out;
}

namespace {

// Builds one region + its tagged EAD for `component`.
Result<ArtificialRegion> MakeRegion(AttrCatalog* catalog,
                                    const FlexibleScheme& component,
                                    const std::string& prefix,
                                    size_t region_index,
                                    size_t max_combinations,
                                    std::vector<std::pair<AttrId, Domain>>*
                                        tag_domains) {
  uint64_t count = component.DnfCount();
  if (count > max_combinations) {
    return Status::OutOfRange(
        StrCat("variant region has ", count,
               " combinations; tag synthesis capped at ", max_combinations));
  }
  FLEXREL_ASSIGN_OR_RETURN(std::vector<AttrSet> combos,
                           component.Dnf(max_combinations));
  ArtificialRegion region;
  region.tag = catalog->Intern(StrCat(prefix, region_index, "_tag"));
  region.region_attrs = component.attrs();
  region.combinations = combos;
  std::vector<EadVariant> variants;
  for (size_t i = 0; i < combos.size(); ++i) {
    variants.push_back(
        EadVariant{ConditionSet::Single(region.tag,
                                        Value::Int(static_cast<int64_t>(i))),
                   combos[i]});
  }
  FLEXREL_ASSIGN_OR_RETURN(
      region.ead, ExplicitAD::Make(AttrSet::Of(region.tag),
                                   region.region_attrs, std::move(variants)));
  FLEXREL_ASSIGN_OR_RETURN(
      Domain tag_domain,
      Domain::IntRange(0, static_cast<int64_t>(combos.size()) - 1));
  tag_domains->push_back({region.tag, tag_domain});
  return region;
}

}  // namespace

Result<ArtificialAds> SynthesizeArtificialAds(AttrCatalog* catalog,
                                              const FlexibleScheme& scheme,
                                              const std::string& prefix,
                                              size_t max_combinations) {
  ArtificialAds out;

  // No variability: nothing to synthesize.
  if (scheme.DnfCount() <= 1) {
    out.augmented_scheme = scheme;
    return out;
  }

  // Case 1 — a "record-like" top: every component is mandatory
  // (at-least == at-most == #components). Then variability is confined to
  // the individual components and each variable one becomes its own region;
  // the tags join the top group, which stays all-mandatory.
  if (!scheme.is_leaf() && scheme.at_least() == scheme.at_most() &&
      scheme.at_most() == scheme.components().size()) {
    std::vector<FlexibleScheme> components = scheme.components();
    size_t region_index = 0;
    for (const FlexibleScheme& component : scheme.components()) {
      if (component.DnfCount() <= 1) continue;
      FLEXREL_ASSIGN_OR_RETURN(
          ArtificialRegion region,
          MakeRegion(catalog, component, prefix, region_index++,
                     max_combinations, &out.tag_domains));
      components.push_back(FlexibleScheme::Attr(region.tag));
      out.regions.push_back(std::move(region));
    }
    uint32_t n = static_cast<uint32_t>(components.size());
    FLEXREL_ASSIGN_OR_RETURN(out.augmented_scheme,
                             FlexibleScheme::Group(n, n, std::move(components)));
    return out;
  }

  // Case 2 — the top level itself makes choices (at-least < at-most or a
  // proper subset may be selected): the whole scheme is one region with a
  // single tag enumerating dnf(FS).
  FLEXREL_ASSIGN_OR_RETURN(
      ArtificialRegion region,
      MakeRegion(catalog, scheme, prefix, 0, max_combinations,
                 &out.tag_domains));
  std::vector<FlexibleScheme> components;
  components.push_back(scheme);
  components.push_back(FlexibleScheme::Attr(region.tag));
  out.regions.push_back(std::move(region));
  FLEXREL_ASSIGN_OR_RETURN(out.augmented_scheme,
                           FlexibleScheme::Group(2, 2, std::move(components)));
  return out;
}

Result<Tuple> CompleteWithTags(const ArtificialAds& ads, const Tuple& t) {
  Tuple out = t;
  for (const ArtificialRegion& region : ads.regions) {
    AttrSet shape = t.attrs().Intersect(region.region_attrs);
    int64_t tag_value = -1;
    for (size_t i = 0; i < region.combinations.size(); ++i) {
      if (region.combinations[i] == shape) {
        tag_value = static_cast<int64_t>(i);
        break;
      }
    }
    if (tag_value < 0) {
      return Status::ConstraintViolation(
          StrCat("tuple shape ", shape.ToString(),
                 " matches no combination of region tag attr ", region.tag));
    }
    out.Set(region.tag, Value::Int(tag_value));
  }
  return out;
}

Tuple StripTags(const ArtificialAds& ads, const Tuple& t) {
  Tuple out = t;
  for (const ArtificialRegion& region : ads.regions) {
    out.Erase(region.tag);
  }
  return out;
}

}  // namespace flexrel
