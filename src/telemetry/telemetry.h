// Engine-wide telemetry plane: a low-overhead metrics registry (counters,
// gauges, fixed-bucket histograms) plus RAII scoped-trace spans recorded
// into a bounded in-memory ring, with one JSON serializer for both.
//
// Every cost-based decision the engine makes — the partition cache's
// three-arm flush policy, the multi-patch drop-vs-patch estimates, the
// evaluator's greedy join ordering — is invisible without per-decision
// attribution and timings. This subsystem is the single substrate all of
// them report through: `PliCache`, `Pli` intersections, the validator,
// `parallel_discovery`, the algebra evaluator, and `FlexibleRelation`'s
// batch mutation paths all increment named metrics and open spans here,
// and benches / `scripts/perf_smoke.py` dump the result as one JSON
// document (the unified stats channel that replaced bench_pli's hand-rolled
// counter printing).
//
// Cost model — telemetry is compiled in but OFF by default:
//
//  - `Enabled()` is a single relaxed atomic load. Every instrumentation
//    site guards on it, so a disabled build's overhead is one predictable
//    branch per site (measured within noise on BM_PliLevelSweep and the
//    mutate-then-query sweep).
//  - When enabled, counters and histograms update via relaxed atomics —
//    no locks on any hot path. Metric objects live forever once
//    registered (Reset() zeroes values in place, never deallocates), so
//    call sites may cache pointers in function-local statics and skip the
//    registry lookup after the first enabled pass (the FLEXREL_TELEMETRY_*
//    macros below do exactly that).
//  - Span records go through one mutex-guarded bounded ring; spans are
//    coarse (a flush, a discovery level, a batch apply), not per-tuple.
//
// Snapshot consistency: a counter snapshot is one atomic load; a histogram
// snapshot derives its total count from the bucket loads themselves, so
// `count == Σ buckets` holds by construction even while writers race; and
// ToJson() holds the registration lock, so no metric is ever torn between
// appearing in one section of the dump and missing from another.
// Individual relaxed counters may be mutually behind by in-flight
// increments — exact cross-metric identities (hits + misses == lookups)
// hold whenever the instrumented structure is quiescent, which is when
// benches and tests read them.

#ifndef FLEXREL_TELEMETRY_TELEMETRY_H_
#define FLEXREL_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flexrel {
namespace telemetry {

/// Runtime knobs, applied by Enable(). Telemetry is compiled in
/// unconditionally; this is the off-by-default switch.
struct TelemetryOptions {
  /// Bound of the in-memory span ring: once full, the oldest span records
  /// are overwritten (the dump reports how many were dropped).
  size_t trace_capacity = 4096;
};

/// The global on/off guard — one relaxed atomic load, the only cost every
/// instrumentation site pays when telemetry is off.
bool Enabled();

/// Turns the plane on (idempotent; re-applying options resizes the ring).
void Enable(const TelemetryOptions& options = {});

/// Turns it off. Metric values are retained (dumpable post-run); only new
/// updates stop.
void Disable();

// ---------------------------------------------------------------------------
// Metric kinds. All updates are relaxed atomics: exact totals, no ordering.
// ---------------------------------------------------------------------------

/// Monotone event count.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (plus a keep-max update for
/// high-watermarks like scratch capacity).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void KeepMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples (latencies in
/// nanoseconds, burst sizes, row counts). Bucket i covers [2^(i-1), 2^i)
/// for i >= 1 and [0, 1] for i = 0; the last bucket absorbs everything
/// beyond — power-of-two edges keep Record() branch-free (bit width) and
/// the edges exactly testable.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  /// Inclusive upper edge of bucket `i` (the Prometheus-style `le` bound);
  /// the final bucket reports UINT64_MAX.
  static uint64_t BucketUpperEdge(size_t i);

  /// The bucket a sample lands in — exposed so tests can pin the edges.
  static size_t BucketIndex(uint64_t value);

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;  ///< Σ buckets — consistent with them by construction
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };
  Snapshot Snap() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Scoped tracing: nested timed regions into a bounded ring.
// ---------------------------------------------------------------------------

/// One completed span. `name` is a static string supplied by the call site;
/// `detail` carries the per-decision attribution (flush arm, burst size,
/// the estimate that picked the arm, ...).
struct SpanRecord {
  const char* name = "";
  std::string detail;
  uint64_t start_ns = 0;  ///< since process start (monotonic)
  uint64_t dur_ns = 0;
  uint32_t thread = 0;  ///< small per-thread id (registration order)
  uint32_t depth = 0;   ///< nesting depth within the opening thread
};

/// RAII span: times the enclosing scope and records it into the ring on
/// destruction. Inert (no clock read, no allocation) when telemetry is
/// disabled at construction. `name` must be a string literal or otherwise
/// outlive the registry.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Attaches free-form attribution, e.g. "arm=batched b=64 est=512".
  void SetDetail(std::string detail) { detail_ = std::move(detail); }

  bool active() const { return active_; }

 private:
  bool active_;
  const char* name_;
  std::string detail_;
  uint64_t start_ns_ = 0;
};

/// Monotonic nanoseconds since process start — the span clock, exposed for
/// call sites that time sub-regions by hand.
uint64_t NowNs();

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// Name -> metric. Registration takes a lock; the returned pointers are
/// valid for the life of the process (Reset() zeroes in place), so hot
/// sites cache them.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Point-in-time value of a counter, 0 when never registered — the
  /// convenient read for tests and perf_smoke-style invariant checks.
  uint64_t CounterValue(std::string_view name) const;

  /// One coherent dump of every metric plus the span ring, serialized as a
  /// single JSON document (the unified stats channel benches emit).
  std::string ToJson() const;

  /// Zeroes every metric and clears the span ring. Pointers handed out by
  /// Get* stay valid — values are reset in place, nothing is deallocated.
  void Reset();

  /// Spans recorded so far (including ones the ring has since dropped).
  size_t spans_recorded() const;

  // Internal: ring append for ScopedSpan.
  void RecordSpan(SpanRecord record);
  void SetTraceCapacity(size_t capacity);

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience single-call reads of the global registry.
inline uint64_t CounterValue(std::string_view name) {
  return Registry::Global().CounterValue(name);
}

// ---------------------------------------------------------------------------
// Instrumentation macros: one relaxed load when disabled; a cached-pointer
// relaxed atomic update when enabled. The function-local static resolves
// the name exactly once per site.
// ---------------------------------------------------------------------------

#define FLEXREL_TELEMETRY_COUNT(name, n)                                   \
  do {                                                                     \
    if (::flexrel::telemetry::Enabled()) {                                 \
      static ::flexrel::telemetry::Counter* flexrel_telemetry_counter =    \
          ::flexrel::telemetry::Registry::Global().GetCounter(name);       \
      flexrel_telemetry_counter->Add(static_cast<uint64_t>(n));            \
    }                                                                      \
  } while (0)

#define FLEXREL_TELEMETRY_GAUGE_MAX(name, v)                               \
  do {                                                                     \
    if (::flexrel::telemetry::Enabled()) {                                 \
      static ::flexrel::telemetry::Gauge* flexrel_telemetry_gauge =        \
          ::flexrel::telemetry::Registry::Global().GetGauge(name);         \
      flexrel_telemetry_gauge->KeepMax(static_cast<int64_t>(v));           \
    }                                                                      \
  } while (0)

#define FLEXREL_TELEMETRY_GAUGE_SET(name, v)                               \
  do {                                                                     \
    if (::flexrel::telemetry::Enabled()) {                                 \
      static ::flexrel::telemetry::Gauge* flexrel_telemetry_gauge =        \
          ::flexrel::telemetry::Registry::Global().GetGauge(name);         \
      flexrel_telemetry_gauge->Set(static_cast<int64_t>(v));               \
    }                                                                      \
  } while (0)

#define FLEXREL_TELEMETRY_HIST(name, v)                                    \
  do {                                                                     \
    if (::flexrel::telemetry::Enabled()) {                                 \
      static ::flexrel::telemetry::Histogram* flexrel_telemetry_hist =     \
          ::flexrel::telemetry::Registry::Global().GetHistogram(name);     \
      flexrel_telemetry_hist->Record(static_cast<uint64_t>(v));            \
    }                                                                      \
  } while (0)

/// Scoped latency into histogram `name` (nanoseconds). Declares a local
/// whose destructor records; inert when disabled at entry.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(hist), start_ns_(hist != nullptr ? NowNs() : 0) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_ns_);
  }

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

#define FLEXREL_TELEMETRY_LATENCY_IMPL2(var, name)                          \
  ::flexrel::telemetry::Histogram* var##_hist = nullptr;                    \
  if (::flexrel::telemetry::Enabled()) {                                    \
    static ::flexrel::telemetry::Histogram* flexrel_telemetry_lat_##var =   \
        ::flexrel::telemetry::Registry::Global().GetHistogram(name);        \
    var##_hist = flexrel_telemetry_lat_##var;                               \
  }                                                                         \
  ::flexrel::telemetry::ScopedLatency var(var##_hist)

/// FLEXREL_TELEMETRY_LATENCY(timer, "engine.pli.intersect_ns"); — times
/// the rest of the scope into that histogram.
#define FLEXREL_TELEMETRY_LATENCY(var, name) \
  FLEXREL_TELEMETRY_LATENCY_IMPL2(var, name)

}  // namespace telemetry
}  // namespace flexrel

#endif  // FLEXREL_TELEMETRY_TELEMETRY_H_
