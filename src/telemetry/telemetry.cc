#include "telemetry/telemetry.h"

#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace flexrel {
namespace telemetry {

namespace {

std::atomic<bool> g_enabled{false};

// Process-start anchor for NowNs(); initialized on first use, which is
// early enough — spans only need a shared monotonic origin.
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local uint32_t t_span_depth = 0;

void JsonEscape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::BucketUpperEdge(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  return uint64_t{1} << i;  // bucket 0: [0, 1]; bucket i: (2^(i-1), 2^i]
}

size_t Histogram::BucketIndex(uint64_t value) {
  // Bucket of the smallest upper edge >= value: bit_width of (value - 1),
  // clamped into the final absorbing bucket.
  if (value <= 1) return 0;
  size_t idx = static_cast<size_t>(std::bit_width(value - 1));
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name)
    : active_(Enabled()), name_(name) {
  if (!active_) return;
  start_ns_ = NowNs();
  ++t_span_depth;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanRecord record;
  record.name = name_;
  record.detail = std::move(detail_);
  record.start_ns = start_ns_;
  record.dur_ns = NowNs() - start_ns_;
  record.thread = ThisThreadId();
  record.depth = --t_span_depth;
  Registry::Global().RecordSpan(std::move(record));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // node_hash_map-like stability: unique_ptr payloads never move, so the
  // raw pointers handed to call sites survive rehashes and Reset().
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;

  // Span ring: fixed capacity, oldest overwritten.
  std::vector<SpanRecord> ring;
  size_t ring_capacity = TelemetryOptions().trace_capacity;
  size_t ring_next = 0;     // next slot to write
  size_t spans_total = 0;   // all spans ever recorded
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();  // leaked: metrics outlive static dtors
  return *impl;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t Registry::CounterValue(std::string_view name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(std::string(name));
  return it == im.counters.end() ? 0 : it->second->value();
}

void Registry::RecordSpan(SpanRecord record) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.ring_capacity == 0) return;
  if (im.ring.size() < im.ring_capacity) {
    im.ring.push_back(std::move(record));
  } else {
    im.ring[im.ring_next] = std::move(record);
  }
  im.ring_next = (im.ring_next + 1) % im.ring_capacity;
  ++im.spans_total;
}

void Registry::SetTraceCapacity(size_t capacity) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.ring_capacity = capacity;
  im.ring.clear();
  im.ring_next = 0;
}

size_t Registry::spans_recorded() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.spans_total;
}

void Registry::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, g] : im.gauges) g->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
  im.ring.clear();
  im.ring_next = 0;
  im.spans_total = 0;
}

std::string Registry::ToJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;
  os << "{\n";

  // Sorted sections so dumps of identical runs diff cleanly.
  auto sorted_names = [](const auto& map) {
    std::map<std::string, const typename std::decay_t<
                              decltype(map)>::mapped_type::element_type*>
        out;
    for (const auto& [name, metric] : map) out.emplace(name, metric.get());
    return out;
  };

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : sorted_names(im.counters)) {
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : sorted_names(im.gauges)) {
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : sorted_names(im.histograms)) {
    Histogram::Snapshot snap = h->Snap();
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": {\"count\": " << snap.count << ", \"sum\": " << snap.sum
       << ", \"buckets\": [";
    // Sparse encoding: only non-empty buckets, as [upper_edge, count].
    bool bfirst = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!bfirst) os << ", ";
      os << "[" << Histogram::BucketUpperEdge(i) << ", " << snap.buckets[i]
         << "]";
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  // Spans in recording order (ring start = oldest surviving record).
  os << "  \"spans\": [";
  const size_t n = im.ring.size();
  const size_t start = n < im.ring_capacity ? 0 : im.ring_next;
  for (size_t i = 0; i < n; ++i) {
    const SpanRecord& s = im.ring[(start + i) % n];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"";
    JsonEscape(os, s.name);
    os << "\", \"detail\": \"";
    JsonEscape(os, s.detail);
    os << "\", \"start_ns\": " << s.start_ns << ", \"dur_ns\": " << s.dur_ns
       << ", \"thread\": " << s.thread << ", \"depth\": " << s.depth << "}";
  }
  os << (n == 0 ? "" : "\n  ") << "],\n";
  os << "  \"spans_dropped\": "
     << (im.spans_total > n ? im.spans_total - n : 0) << "\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Enable/Disable
// ---------------------------------------------------------------------------

void Enable(const TelemetryOptions& options) {
  Registry::Global().SetTraceCapacity(options.trace_capacity);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() { g_enabled.store(false, std::memory_order_relaxed); }

}  // namespace telemetry
}  // namespace flexrel
